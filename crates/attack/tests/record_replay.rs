//! Record/replay backbone: a recorded campaign must replay byte-identically
//! under every store backend × flip engine, a lossy or retention-disabled
//! recording must be rejected loudly, the serialized form must round-trip
//! through the strict JSON layer, and any tampering with the transcript
//! must be detected.

use cta_attack::{
    record_campaign, replay_recording, verify_flip_accounting, RecordedAttack, Recording,
    RecordingError, RecordingSpec, ReplayTarget, SprayAttack, TemplatingAttack,
};
use cta_core::DefenseSpec;
use cta_dram::{BlockHammerParams, FlipDirection, StoreBackend};

/// A deliberately small spray campaign: two trials, narrow spray, few
/// hammer rows — enough to induce flips at `pf = 0.05` while keeping the
/// 6-target replay grid fast.
fn small_spray_spec() -> RecordingSpec {
    let attack =
        SprayAttack { regions: 8, file_pages: 2, max_hammer_rows: 4, flush_per_probe: false };
    RecordingSpec::new(RecordedAttack::Spray(attack), vec![0, 1])
}

fn small_templating_spec() -> RecordingSpec {
    let attack = TemplatingAttack { arena_pages: 96, max_attempts: 4, flush_per_probe: false };
    RecordingSpec::new(RecordedAttack::Templating(attack), vec![3])
}

#[test]
fn spray_recording_replays_identically_on_every_backend_and_engine() {
    let recording = record_campaign(&small_spray_spec()).unwrap();
    assert_eq!(recording.trials.len(), 2);
    let total_flips: u64 = recording.trials.iter().map(|t| t.flips.len() as u64).sum();
    assert!(total_flips > 0, "a recording with zero flips proves nothing");

    for target in ReplayTarget::all() {
        let report = replay_recording(&recording, target)
            .unwrap_or_else(|e| panic!("replay failed on {target}: {e}"));
        assert_eq!(report.trials, 2, "{target}");
        assert_eq!(report.flips_verified, total_flips, "{target}");
    }
}

#[test]
fn templating_recording_replays_identically() {
    let recording = record_campaign(&small_templating_spec()).unwrap();
    for target in [
        ReplayTarget::default(),
        ReplayTarget {
            backend: StoreBackend::Cow,
            flip_engine: cta_dram::FlipEngine::Scalar,
            defense: DefenseSpec::None,
        },
    ] {
        replay_recording(&recording, target)
            .unwrap_or_else(|e| panic!("replay failed on {target}: {e}"));
    }
}

#[test]
fn zero_capacity_recording_is_rejected_not_silently_empty() {
    // Regression: flip_log_capacity = 0 used to yield an empty flip log
    // that looked like a successful (flip-free) recording.
    let mut spec = small_spray_spec();
    spec.flip_log_capacity = 0;
    match record_campaign(&spec) {
        Err(RecordingError::RetentionDisabled) => {}
        other => panic!("expected RetentionDisabled, got {other:?}"),
    }
}

#[test]
fn lossy_recording_is_rejected_with_the_drop_count() {
    // A 2-event window wraps immediately on any real campaign.
    let mut spec = small_spray_spec();
    spec.flip_log_capacity = 2;
    match record_campaign(&spec) {
        Err(RecordingError::LossyFlipLog { dropped, retained, .. }) => {
            assert!(dropped > 0, "a lossy log must report what it lost");
            assert_eq!(retained, 2);
        }
        other => panic!("expected LossyFlipLog, got {other:?}"),
    }
}

#[test]
fn replay_rejects_a_lossy_capacity_override_too() {
    // A recording edited (or recorded by older code) to claim a tiny
    // capacity must fail replay the same way, not assert on garbage.
    let mut recording = record_campaign(&small_spray_spec()).unwrap();
    recording.spec.flip_log_capacity = 1;
    match replay_recording(&recording, ReplayTarget::default()) {
        Err(RecordingError::LossyFlipLog { .. }) => {}
        other => panic!("expected LossyFlipLog, got {other:?}"),
    }
}

#[test]
fn serialized_recording_round_trips_exactly() {
    let recording = record_campaign(&small_spray_spec()).unwrap();
    let json = recording.to_json_string().unwrap();
    let parsed = Recording::from_json_str(&json).unwrap();
    assert_eq!(parsed, recording, "JSON round-trip must be lossless");
    // And the round-tripped recording still replays.
    replay_recording(&parsed, ReplayTarget::default()).unwrap();
    // Strictness: the serialized form itself re-parses through the strict
    // JSON layer (no duplicate keys, finite numbers, no trailing junk).
    cta_telemetry::json::parse(&json).unwrap();
}

#[test]
fn tampered_flip_transcript_fails_replay() {
    let mut recording = record_campaign(&small_spray_spec()).unwrap();
    let trial = recording.trials.iter_mut().find(|t| !t.flips.is_empty()).unwrap();
    let seed = trial.seed;
    let event = &mut trial.flips[0];
    event.direction = match event.direction {
        FlipDirection::OneToZero => FlipDirection::ZeroToOne,
        FlipDirection::ZeroToOne => FlipDirection::OneToZero,
    };
    match replay_recording(&recording, ReplayTarget::default()) {
        Err(RecordingError::Mismatch { seed: s, what: "flip transcript", detail }) => {
            assert_eq!(s, seed);
            assert!(detail.contains("event 0"), "{detail}");
        }
        other => panic!("expected flip-transcript mismatch, got {other:?}"),
    }
}

#[test]
fn tampered_contents_hash_fails_replay() {
    let mut recording = record_campaign(&small_spray_spec()).unwrap();
    recording.trials[0].contents_hash ^= 1;
    match replay_recording(&recording, ReplayTarget::default()) {
        Err(RecordingError::Mismatch { what: "contents hash", .. }) => {}
        other => panic!("expected contents-hash mismatch, got {other:?}"),
    }
}

#[test]
fn tampered_telemetry_fails_replay() {
    let mut recording = record_campaign(&small_spray_spec()).unwrap();
    let json = recording.telemetry.to_compact_string().replacen(
        "\"activations\": ",
        "\"activations\": 1",
        1,
    );
    recording.telemetry = cta_telemetry::json::parse(&json).unwrap();
    match replay_recording(&recording, ReplayTarget::default()) {
        Err(RecordingError::Mismatch { what: "telemetry snapshot", .. }) => {}
        other => panic!("expected telemetry mismatch, got {other:?}"),
    }
}

#[test]
fn flip_accounting_cross_checks_counters_against_transcript() {
    let recording = record_campaign(&small_spray_spec()).unwrap();
    // Rebuild a Counters view of the recorded telemetry to doctor it.
    let mut counters = cta_telemetry::Counters::new("recording");
    let total: u64 = recording.trials.iter().map(|t| t.flips.len() as u64).sum();
    counters.set_u64("campaign", "total_flips", total + 1);
    counters.set_u64("dram", "flips_one_to_zero", total);
    counters.set_u64("dram", "flips_zero_to_one", 0);
    match verify_flip_accounting(&counters, &recording.trials) {
        Err(RecordingError::Accounting { what, from_log, from_counters }) => {
            assert!(what.contains("campaign.total_flips"), "{what}");
            assert_eq!(from_log, total);
            assert_eq!(from_counters, total + 1);
        }
        other => panic!("expected accounting drift, got {other:?}"),
    }

    counters.set_u64("campaign", "total_flips", total);
    counters.set_u64("dram", "flips_one_to_zero", total + 2);
    match verify_flip_accounting(&counters, &recording.trials) {
        Err(RecordingError::Accounting { what, .. }) => {
            assert!(what.contains("directional"), "{what}");
        }
        other => panic!("expected directional drift, got {other:?}"),
    }
}

#[test]
fn malformed_documents_are_rejected_with_paths() {
    // Not JSON at all.
    assert!(matches!(Recording::from_json_str("{nope"), Err(RecordingError::Json(_))));
    // Valid JSON, wrong shape.
    match Recording::from_json_str("{}") {
        Err(RecordingError::Malformed { path, .. }) => assert_eq!(path, "version"),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // Wrong version.
    match Recording::from_json_str(r#"{"version": 99}"#) {
        Err(RecordingError::Malformed { path, message }) => {
            assert_eq!(path, "version");
            assert!(message.contains("99"), "{message}");
        }
        other => panic!("expected version error, got {other:?}"),
    }
    // A real recording with a broken telemetry snapshot fails schema
    // validation at parse time.
    let recording = record_campaign(&small_spray_spec()).unwrap();
    let json = recording.to_json_string().unwrap();
    let broken = json.replacen("\"label\": \"recording\"", "\"label\": 7", 1);
    match Recording::from_json_str(&broken) {
        Err(RecordingError::Malformed { path, .. }) => {
            assert!(path.starts_with("telemetry."), "{path}");
        }
        other => panic!("expected telemetry schema failure, got {other:?}"),
    }
}

/// The golden fixtures checked into `fixtures/recordings/`, parsed
/// through the strict loader.
fn golden_fixtures() -> Vec<(String, Recording)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/recordings");
    let mut fixtures = Vec::new();
    for name in ["spray-small", "templating-small"] {
        let path = dir.join(format!("{name}.recording.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("golden fixture {} unreadable: {e}", path.display()));
        fixtures.push((name.to_string(), Recording::from_json_str(&text).unwrap()));
    }
    fixtures
}

#[test]
fn golden_fixtures_replay_byte_identically_under_explicit_no_defense() {
    // The defense refactor's determinism contract: a replay target that
    // names `DefenseSpec::None` explicitly takes the pre-refactor code
    // path bit for bit, so the pre-refactor golden recordings replay
    // unchanged — transcript, contents hash, clock, outcome, telemetry.
    let target = ReplayTarget { defense: DefenseSpec::None, ..ReplayTarget::default() };
    for (name, recording) in golden_fixtures() {
        let report = replay_recording(&recording, target)
            .unwrap_or_else(|e| panic!("golden fixture {name} diverged under None: {e}"));
        assert_eq!(report.trials, recording.trials.len(), "{name}");
    }
}

#[test]
fn observer_defense_replays_the_transcript_but_marks_the_telemetry() {
    // A pure observer must not perturb the simulation: the per-trial
    // comparisons (flip transcript, contents, clock, outcome) all pass,
    // and the only divergence is the campaign telemetry, where the
    // defended kernel emits its `defense` counter group.
    let recording = record_campaign(&small_spray_spec()).unwrap();
    let target = ReplayTarget { defense: DefenseSpec::Observer, ..ReplayTarget::default() };
    match replay_recording(&recording, target) {
        Err(RecordingError::Mismatch { what: "telemetry snapshot", .. }) => {}
        other => panic!("expected telemetry-only divergence, got {other:?}"),
    }
}

#[test]
fn an_acting_defense_diverges_in_the_flip_transcript_itself() {
    let recording = record_campaign(&small_spray_spec()).unwrap();
    let target = ReplayTarget {
        defense: DefenseSpec::BlockHammer(BlockHammerParams::default()),
        ..ReplayTarget::default()
    };
    assert_eq!(target.to_string(), format!("{}+blockhammer", ReplayTarget::default()));
    match replay_recording(&recording, target) {
        Err(RecordingError::Mismatch { .. }) => {}
        Ok(_) => panic!("a throttling defense must not reproduce an undefended recording"),
        Err(other) => panic!("expected a replay mismatch, got {other:?}"),
    }
}

#[test]
fn recording_is_thread_count_invariant() {
    let serial = record_campaign(&small_spray_spec()).unwrap();
    let mut spec = small_spray_spec();
    spec.threads = 4;
    let parallel = record_campaign(&spec).unwrap();
    // The spec differs (threads is recorded), but every observable —
    // trials, transcripts, telemetry — must be identical.
    assert_eq!(parallel.trials, serial.trials);
    assert_eq!(parallel.telemetry, serial.telemetry);
}
