//! Trial-isolation differential suite: journaled in-place trials must be
//! observably identical to forked trials.
//!
//! [`TrialIsolation::Journal`] runs each trial directly on the pooled
//! parent kernel under an undo journal and rolls it back, instead of
//! forking the parent per trial. The executor's determinism contract says
//! the choice is invisible: transcripts, merged counters, summaries, and
//! contents hashes must be byte-identical to the fork path (and hence to
//! the scoped serial path) on every backend × flip-engine combination.
//! These tests pin that, plus the cancellation path and the
//! tenant-limits gauge parity the journal must preserve.

use std::io::Write;
use std::sync::{Arc, Mutex};

use cta_attack::recording::RECORDING_LABEL;
use cta_attack::{
    record_campaign, CampaignExecutor, CampaignRequest, ExecutorConfig, RecordedAttack,
    RecordingSpec, ReplayTarget, SprayAttack, TemplatingAttack, TenantLimits, TrialIsolation,
};
use cta_telemetry::json;
use cta_telemetry::schema::validate_executor_event;

/// Small machine, enough trials to exercise pool hits and rollback reuse.
fn small_spec(seeds: Vec<u64>) -> RecordingSpec {
    let attack =
        SprayAttack { regions: 4, file_pages: 2, max_hammer_rows: 2, flush_per_probe: false };
    let mut spec = RecordingSpec::new(RecordedAttack::Spray(attack), seeds);
    spec.memory_bytes = 2 << 20;
    spec.ptp_bytes = 256 << 10;
    spec.protected = true;
    spec.profile_cells = true;
    spec
}

fn request(tenant: &str, spec: RecordingSpec, isolation: TrialIsolation) -> CampaignRequest {
    let mut request = CampaignRequest::new(tenant, spec);
    request.label = RECORDING_LABEL.to_string();
    request.isolation = isolation;
    request
}

/// A `Write` sink the test can read back after the executor wrote to it.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl SharedSink {
    fn lines(&self) -> Vec<String> {
        let buf = self.0.lock().expect("sink poisoned");
        String::from_utf8(buf.clone())
            .expect("jsonl is utf-8")
            .lines()
            .map(str::to_string)
            .collect()
    }
}

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("sink poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn journal_matches_fork_on_every_backend_and_flip_engine() {
    // Two trials per seed value so the journal path serves repeat trials
    // from a rolled-back parent (the case a leaky rollback would corrupt).
    let spec = small_spec(vec![0, 1, 0, 1]);
    for target in ReplayTarget::all() {
        let run = |isolation: TrialIsolation| {
            let exec = CampaignExecutor::new(ExecutorConfig { workers: 2, parents_per_worker: 2 });
            let mut req = request("tenant", spec.clone(), isolation);
            req.target = target;
            let output = exec.run(req).expect("campaign completes");
            (output, exec.stats())
        };
        let (forked, fork_stats) = run(TrialIsolation::Fork);
        let (journaled, journal_stats) = run(TrialIsolation::Journal);

        assert_eq!(journaled.trials, forked.trials, "{target}: trial transcripts diverged");
        assert_eq!(journaled.summary, forked.summary, "{target}: summaries diverged");
        assert_eq!(
            journaled.counters.to_json(),
            forked.counters.to_json(),
            "{target}: merged telemetry diverged"
        );
        for (j, f) in journaled.trials.iter().zip(&forked.trials) {
            assert_eq!(
                j.contents_hash, f.contents_hash,
                "{target}: final module contents diverged at seed {}",
                j.seed
            );
        }
        // Both executors really took their own path.
        assert_eq!(fork_stats.journal_runs, 0);
        assert_eq!(
            journal_stats.journal_runs, journal_stats.trials_completed,
            "{target}: every journaled trial runs in place"
        );
    }
}

#[test]
fn journal_matches_fork_for_the_templating_attack() {
    // A second attack shape: templating leans on flip-log drains and
    // profiling, the states whose journaling is easiest to get wrong.
    let attack = TemplatingAttack { arena_pages: 48, max_attempts: 2, flush_per_probe: false };
    let mut spec = RecordingSpec::new(RecordedAttack::Templating(attack), vec![3, 4]);
    spec.memory_bytes = 2 << 20;
    spec.ptp_bytes = 256 << 10;
    spec.profile_cells = true;

    let run = |isolation: TrialIsolation| {
        let exec = CampaignExecutor::new(ExecutorConfig { workers: 1, parents_per_worker: 2 });
        exec.run(request("tenant", spec.clone(), isolation)).expect("campaign completes")
    };
    let forked = run(TrialIsolation::Fork);
    let journaled = run(TrialIsolation::Journal);
    assert_eq!(journaled.trials, forked.trials);
    assert_eq!(journaled.counters.to_json(), forked.counters.to_json());
}

#[test]
fn journal_replay_reproduces_the_scoped_recording() {
    let recording = record_campaign(&small_spec(vec![5, 6])).expect("scoped path records");
    for workers in [1, 3] {
        let exec = CampaignExecutor::new(ExecutorConfig { workers, parents_per_worker: 2 });
        let report = exec
            .replay_isolated(&recording, ReplayTarget::default(), TrialIsolation::Journal)
            .expect("journaled replay is byte-identical");
        assert_eq!(report.trials, 2);
    }
}

#[test]
fn tenant_limit_gauges_are_identical_across_isolation_modes() {
    // The model-cache byte budget attaches to parents at boot; rollback
    // restores parents byte-identically, so the published gauge must not
    // depend on how trials were isolated.
    let spec = small_spec(vec![7, 8]);
    let gauge = |isolation: TrialIsolation| {
        let exec = CampaignExecutor::new(ExecutorConfig { workers: 1, parents_per_worker: 2 });
        exec.set_tenant_limits(
            "tenant",
            TenantLimits { max_parents_per_worker: Some(2), model_cache_bytes: Some(1 << 20) },
        );
        let output = exec.run(request("tenant", spec.clone(), isolation)).expect("completes");
        assert_eq!(output.summary.trials, 2);
        exec.stats().pool_model_cache_bytes
    };
    let forked = gauge(TrialIsolation::Fork);
    let journaled = gauge(TrialIsolation::Journal);
    assert!(forked > 0, "resident parents publish their footprint");
    assert_eq!(journaled, forked, "isolation mode leaked into the pool gauge");
}

#[test]
fn cancel_drops_queued_trials_and_emits_a_cancelled_event() {
    // One worker: campaign A's trials occupy the queue head, so campaign
    // B's trials sit queued when the cancel lands.
    let exec = CampaignExecutor::new(ExecutorConfig { workers: 1, parents_per_worker: 2 });
    let sink = SharedSink::default();
    exec.set_jsonl_sink(sink.clone());

    let first = exec.submit(request("tenant", small_spec(vec![0, 1, 2, 3]), TrialIsolation::Fork));
    let doomed_seeds = 6u64;
    let doomed = exec.submit(request(
        "tenant",
        small_spec((10..10 + doomed_seeds).collect()),
        TrialIsolation::Fork,
    ));
    let (first, doomed) = (first.expect("submits"), doomed.expect("submits"));

    let dropped = exec.cancel(doomed.id());
    assert!(dropped > 0, "queued trials were dropped");
    // Cancelling again (or cancelling an unknown id) is a no-op.
    assert_eq!(exec.cancel(9999), 0);

    let kept = first.wait().expect("uncancelled campaign completes");
    assert_eq!(kept.summary.trials, 4);
    assert_eq!(kept.dropped_trials, 0);

    let output = doomed.wait().expect("cancelled campaign still merges");
    assert_eq!(output.dropped_trials, dropped as u64);
    assert_eq!(output.summary.trials as u64 + output.dropped_trials, doomed_seeds);
    assert_eq!(output.trials.len(), output.summary.trials);
    assert_eq!(output.trial_latencies_ns.len(), output.summary.trials);

    // The stream carries the cancellation and every line passes the
    // executor-event schema (campaign and cancelled shapes both).
    let lines = sink.lines();
    let mut saw_cancelled = false;
    for line in &lines {
        let doc = json::parse(line).expect("jsonl line parses");
        assert_eq!(validate_executor_event(&doc), vec![], "line failed schema: {line}");
        if doc.get("event") == Some(&json::JsonValue::String("cancelled".to_string())) {
            saw_cancelled = true;
            assert_eq!(
                doc.get("dropped_trials"),
                Some(&json::JsonValue::Number(dropped as f64)),
                "cancelled event counts the dropped trials"
            );
        }
    }
    assert!(saw_cancelled, "a cancelled event was emitted: {lines:?}");
}
