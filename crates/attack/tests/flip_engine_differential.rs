//! Differential campaigns: the wordwise bitplane flip engine must be
//! invisible to an attacker. The engine only changes how the simulator
//! computes disturbance and decay — compiled `u64` masks instead of
//! per-bit loops — so a campaign on a wordwise machine must be bit-identical
//! to the same campaign on a scalar machine: same outcome, same simulated
//! time, same flip log, same DRAM statistics, and the same telemetry JSON
//! byte for byte (eviction counters included: neither engine overflows the
//! model caches at this scale).

use cta_attack::spray::SprayAttack;
use cta_attack::templating::TemplatingAttack;
use cta_core::verify::verify_system;
use cta_core::SystemBuilder;
use cta_dram::{DisturbanceParams, FlipEngine, MapGen, StoreBackend};
use cta_vm::Kernel;

/// Two machines identical in every respect except the flip engine.
fn machines(seed: u64, pf: f64, backend: StoreBackend) -> (Kernel, Kernel) {
    machines_with(seed, pf, backend, MapGen::default())
}

/// Same, pinning the vulnerability-map derivation version. Both machines
/// share the derivation — the differential is engine-only, within either
/// deterministic universe.
fn machines_with(seed: u64, pf: f64, backend: StoreBackend, map_gen: MapGen) -> (Kernel, Kernel) {
    let base = SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(seed)
        .backend(backend)
        .map_gen(map_gen)
        .disturbance(DisturbanceParams { pf, ..DisturbanceParams::default() });
    let scalar = base.clone().flip_engine(FlipEngine::Scalar).build().unwrap();
    let wordwise = base.clone().flip_engine(FlipEngine::Wordwise).build().unwrap();
    (scalar, wordwise)
}

fn assert_machines_identical(scalar: &Kernel, wordwise: &Kernel, ctx: &str) {
    assert_eq!(scalar.now_ns(), wordwise.now_ns(), "{ctx}: simulated clocks diverged");

    let ss = scalar.dram().stats();
    let sw = wordwise.dram().stats();
    assert_eq!(ss, sw, "{ctx}: DRAM statistics (including the flip log) diverged");
    assert!(ss.flip_log.iter().eq(sw.flip_log.iter()), "{ctx}: flip-log events diverged");

    // Full telemetry identity — no group excluded. The engine is pure
    // implementation; even its cache-eviction counters agree (zero) here.
    let cs = scalar.counters("differential");
    let cw = wordwise.counters("differential");
    assert_eq!(cs.to_json(), cw.to_json(), "{ctx}: telemetry JSON diverged");

    let rs = verify_system(scalar).unwrap();
    let rw = verify_system(wordwise).unwrap();
    assert_eq!(rs.is_clean(), rw.is_clean(), "{ctx}: verifier verdicts diverged");
    assert_eq!(
        rs.self_references().count(),
        rw.self_references().count(),
        "{ctx}: self-reference counts diverged"
    );
}

#[test]
fn spray_campaign_is_bit_identical_across_engines() {
    let attack = SprayAttack::default();
    for seed in [0u64, 3, 5] {
        let (mut scalar, mut wordwise) = machines(seed, 0.05, StoreBackend::default());
        let out_s = attack.run(&mut scalar).unwrap();
        let out_w = attack.run(&mut wordwise).unwrap();
        assert_eq!(out_s, out_w, "seed {seed}: spray outcomes diverged");
        assert_machines_identical(&scalar, &wordwise, &format!("spray seed {seed}"));
    }
}

#[test]
fn templating_campaign_is_bit_identical_across_engines() {
    let attack = TemplatingAttack::default();
    for seed in [0u64, 1] {
        let (mut scalar, mut wordwise) = machines(seed, 0.004, StoreBackend::default());
        let out_s = attack.run(&mut scalar).unwrap();
        let out_w = attack.run(&mut wordwise).unwrap();
        assert_eq!(out_s, out_w, "seed {seed}: templating outcomes diverged");
        assert_machines_identical(&scalar, &wordwise, &format!("templating seed {seed}"));
    }
}

#[test]
fn engines_agree_on_every_row_store_backend() {
    let attack = SprayAttack::default();
    for backend in StoreBackend::ALL {
        let (mut scalar, mut wordwise) = machines(7, 0.05, backend);
        let out_s = attack.run(&mut scalar).unwrap();
        let out_w = attack.run(&mut wordwise).unwrap();
        assert_eq!(out_s, out_w, "backend {backend}: spray outcomes diverged");
        assert_machines_identical(&scalar, &wordwise, &format!("backend {backend}"));
    }
}

#[test]
fn campaigns_are_bit_identical_across_engines_under_counter_maps() {
    // The counter-mode derivation picks different (equally valid) maps for
    // the same seed; the engine differential must hold inside that universe
    // too — the wordwise batched generator against the scalar per-bit
    // reference, at both sparse and dense pf.
    let attack = SprayAttack::default();
    for (seed, pf) in [(0u64, 0.05), (5, 0.004)] {
        let (mut scalar, mut wordwise) =
            machines_with(seed, pf, StoreBackend::default(), MapGen::Counter);
        let out_s = attack.run(&mut scalar).unwrap();
        let out_w = attack.run(&mut wordwise).unwrap();
        assert_eq!(out_s, out_w, "seed {seed}: counter-map spray outcomes diverged");
        assert_machines_identical(&scalar, &wordwise, &format!("counter maps seed {seed}"));
    }
}

#[test]
fn map_gen_versions_are_distinct_deterministic_universes() {
    // Stream and Counter derive different maps from one seed — campaigns
    // may (and at this pf, do) diverge across versions, while each version
    // reproduces itself exactly.
    let attack = SprayAttack::default();
    let run = |map_gen| {
        let (_, mut machine) = machines_with(11, 0.05, StoreBackend::default(), map_gen);
        let out = attack.run(&mut machine).unwrap();
        (out, machine.dram().stats().total_flips())
    };
    let (out_stream, flips_stream) = run(MapGen::Stream);
    let (out_stream2, flips_stream2) = run(MapGen::Stream);
    let (out_counter, flips_counter) = run(MapGen::Counter);
    assert_eq!(out_stream, out_stream2, "stream derivation must be reproducible");
    assert_eq!(flips_stream, flips_stream2);
    assert!(flips_stream > 0 && flips_counter > 0, "both universes must actually flip");
    assert_ne!(
        (out_stream, flips_stream),
        (out_counter, flips_counter),
        "distinct derivations should yield observably different campaigns"
    );
}

#[test]
fn campaigns_actually_flip_bits() {
    // Guard against the differential passing vacuously on a flip-free run.
    let attack = SprayAttack::default();
    let (_, mut wordwise) = machines(3, 0.05, StoreBackend::default());
    attack.run(&mut wordwise).unwrap();
    assert!(wordwise.dram().stats().total_flips() > 0, "spray induced no flips at pf=0.05");
}
