//! Differential campaigns: paging-structure caches must be invisible to an
//! attacker who flushes translation state before every probe.
//!
//! The simulator's determinism contract says DRAM traffic — not MMU cache
//! configuration — decides which bits flip and when. Warm translation
//! caches legitimately change DRAM traffic (that is their whole point), so
//! the equivalence holds exactly when the attacker forces every probe to
//! walk from CR3, the way Algorithm 1 interleaves accesses with `invlpg`.
//! With `flush_per_probe` set, a campaign on a PSC-equipped machine must be
//! bit-identical to the same campaign on a machine with the PSC disabled:
//! same outcome (including simulated time and the human-readable log), same
//! flip log, same DRAM statistics, same telemetry (modulo the `psc` counter
//! group itself), and the same ground-truth verifier verdict.

use cta_attack::spray::SprayAttack;
use cta_attack::templating::TemplatingAttack;
use cta_core::verify::verify_system;
use cta_core::SystemBuilder;
use cta_dram::DisturbanceParams;
use cta_vm::Kernel;

/// Two machines identical in every respect except PSC capacity.
fn machines(seed: u64, pf: f64) -> (Kernel, Kernel) {
    let base = SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(seed)
        .disturbance(DisturbanceParams { pf, ..DisturbanceParams::default() });
    let with_psc = base.clone().psc_entries(16).build().unwrap();
    let without_psc = base.clone().psc_entries(0).build().unwrap();
    (with_psc, without_psc)
}

/// Asserts that two post-campaign machines are observably identical,
/// ignoring only the `psc` telemetry group (the PSC-less machine reports
/// all-zero PSC counters; the PSC-equipped one reports its misses).
fn assert_machines_identical(with_psc: &Kernel, without_psc: &Kernel, ctx: &str) {
    assert_eq!(with_psc.now_ns(), without_psc.now_ns(), "{ctx}: simulated clocks diverged");

    let sa = with_psc.dram().stats();
    let sb = without_psc.dram().stats();
    assert_eq!(sa, sb, "{ctx}: DRAM statistics (including the flip log) diverged");
    assert_eq!(sa.flip_log.dropped(), sb.flip_log.dropped(), "{ctx}: flip-log drop counts");
    assert!(sa.flip_log.iter().eq(sb.flip_log.iter()), "{ctx}: flip-log events diverged");

    let ca = with_psc.counters("differential");
    let cb = without_psc.counters("differential");
    for (name, group) in ca.groups() {
        if name == "psc" {
            continue;
        }
        assert_eq!(Some(group), cb.group(name), "{ctx}: telemetry group `{name}` diverged");
    }
    for (name, _) in cb.groups() {
        assert!(
            name == "psc" || ca.group(name).is_some(),
            "{ctx}: telemetry group `{name}` missing on the PSC machine"
        );
    }

    let ra = verify_system(with_psc).unwrap();
    let rb = verify_system(without_psc).unwrap();
    assert_eq!(ra.is_clean(), rb.is_clean(), "{ctx}: verifier verdicts diverged");
    assert_eq!(
        ra.self_references().count(),
        rb.self_references().count(),
        "{ctx}: self-reference counts diverged"
    );
}

#[test]
fn spray_campaign_is_bit_identical_with_and_without_psc() {
    let attack = SprayAttack { flush_per_probe: true, ..SprayAttack::default() };
    for seed in [0u64, 3, 5] {
        let (mut with_psc, mut without_psc) = machines(seed, 0.05);
        let out_a = attack.run(&mut with_psc).unwrap();
        let out_b = attack.run(&mut without_psc).unwrap();
        assert_eq!(out_a, out_b, "seed {seed}: spray outcomes diverged");
        assert_machines_identical(&with_psc, &without_psc, &format!("spray seed {seed}"));
    }
}

#[test]
fn templating_campaign_is_bit_identical_with_and_without_psc() {
    let attack = TemplatingAttack { flush_per_probe: true, ..TemplatingAttack::default() };
    for seed in [0u64, 1] {
        let (mut with_psc, mut without_psc) = machines(seed, 0.004);
        let out_a = attack.run(&mut with_psc).unwrap();
        let out_b = attack.run(&mut without_psc).unwrap();
        assert_eq!(out_a, out_b, "seed {seed}: templating outcomes diverged");
        assert_machines_identical(&with_psc, &without_psc, &format!("templating seed {seed}"));
    }
}

#[test]
fn psc_counters_show_the_psc_actually_took_part() {
    // Guard against the differential test passing vacuously because the
    // PSC machine never consulted its caches: the flush-per-probe campaign
    // must still record one PSC *miss* per cold walk on the PSC machine
    // and nothing at all on the disabled one.
    let attack = SprayAttack { flush_per_probe: true, ..SprayAttack::default() };
    let (mut with_psc, mut without_psc) = machines(3, 0.05);
    attack.run(&mut with_psc).unwrap();
    attack.run(&mut without_psc).unwrap();
    assert!(with_psc.psc_stats().misses > 0, "PSC machine recorded no PSC lookups");
    assert_eq!(with_psc.psc_stats().hits, 0, "flush-per-probe must keep the PSC cold");
    assert_eq!(without_psc.psc_stats(), Default::default(), "disabled PSC must stay inert");
}
