//! The campaign executor's determinism contract, pinned end to end.
//!
//! The [`CampaignExecutor`] promises that scheduling is invisible in the
//! output: trial transcripts, merged counters, and campaign summaries are
//! byte-identical to the scoped serial path regardless of worker count,
//! submission order, steal interleaving, or pool state (a fork of a
//! fresh boot is indistinguishable from a fresh boot). These tests pin
//! that promise differentially — scoped path vs executor, executor vs
//! executor under permuted schedules — and soak the parent pool to show
//! its footprint stays bounded by its configured capacity, not by the
//! number of campaigns served.

use cta_attack::recording::RECORDING_LABEL;
use cta_attack::{
    record_campaign, CampaignExecutor, CampaignOutput, CampaignRequest, ExecutorConfig,
    RecordedAttack, RecordingSpec, SprayAttack, TenantLimits,
};
use cta_telemetry::json;

/// A deliberately small machine: the determinism claims are about
/// scheduling, not scale, and every test here boots several parents.
fn small_spec(seeds: Vec<u64>) -> RecordingSpec {
    let attack =
        SprayAttack { regions: 4, file_pages: 2, max_hammer_rows: 2, flush_per_probe: false };
    let mut spec = RecordingSpec::new(RecordedAttack::Spray(attack), seeds);
    spec.memory_bytes = 2 << 20;
    spec.ptp_bytes = 256 << 10;
    spec.protected = true;
    spec.profile_cells = true;
    spec
}

/// A request whose merged telemetry is labeled like the scoped path's, so
/// the comparison below covers the label byte too.
fn request(tenant: &str, spec: RecordingSpec) -> CampaignRequest {
    let mut request = CampaignRequest::new(tenant, spec);
    request.label = RECORDING_LABEL.to_string();
    request
}

/// The deterministic surface of a campaign output: everything except the
/// wall-clock fields (latencies and wall time are measurements of the
/// schedule, not products of it).
fn deterministic_surface(output: &CampaignOutput) -> (String, json::JsonValue) {
    (
        format!("{:?}|{:?}", output.trials, output.summary),
        json::parse(&output.counters.to_json()).expect("merged telemetry parses"),
    )
}

#[test]
fn executor_matches_scoped_path_at_every_worker_count() {
    let spec = small_spec(vec![0, 1, 2, 3]);
    let golden = record_campaign(&spec).expect("scoped path records");
    for workers in [1, 2, 3] {
        let exec = CampaignExecutor::new(ExecutorConfig { workers, parents_per_worker: 2 });
        let output = exec.run(request("tenant", spec.clone())).expect("campaign completes");
        assert_eq!(
            output.trials, golden.trials,
            "worker count {workers} changed the trial transcripts"
        );
        let merged = json::parse(&output.counters.to_json()).expect("merged telemetry parses");
        assert_eq!(merged, golden.telemetry, "worker count {workers} changed the merged telemetry");
        assert_eq!(output.trial_latencies_ns.len(), golden.trials.len());
        assert_eq!(output.summary.trials, golden.trials.len());
    }
}

#[test]
fn replaying_a_recording_through_the_executor_verifies_byte_identity() {
    let recording = record_campaign(&small_spec(vec![5, 6])).expect("scoped path records");
    for workers in [1, 3] {
        let exec = CampaignExecutor::new(ExecutorConfig { workers, parents_per_worker: 2 });
        let report = exec
            .replay(&recording, cta_attack::ReplayTarget::default())
            .expect("executor replay is byte-identical");
        assert_eq!(report.trials, 2);
    }
}

#[test]
fn submission_order_does_not_change_any_campaign_output() {
    // Three tenants x two campaigns, distinct seed sets, submitted
    // forward on one executor and reversed on another (different worker
    // counts, so the steal interleavings differ too). Every campaign's
    // deterministic surface must be identical across the two schedules.
    let campaigns: Vec<(String, RecordingSpec)> = (0..3u64)
        .flat_map(|tenant| {
            (0..2u64).map(move |c| {
                (format!("tenant{tenant}"), small_spec(vec![tenant * 10 + c, tenant * 10 + c + 1]))
            })
        })
        .collect();

    let run_schedule = |workers: usize, reversed: bool| -> Vec<(String, json::JsonValue)> {
        let exec = CampaignExecutor::new(ExecutorConfig { workers, parents_per_worker: 2 });
        let mut order: Vec<usize> = (0..campaigns.len()).collect();
        if reversed {
            order.reverse();
        }
        let mut tickets: Vec<(usize, cta_attack::CampaignTicket)> = order
            .into_iter()
            .map(|i| {
                let (tenant, spec) = &campaigns[i];
                (i, exec.submit(request(tenant, spec.clone())).expect("campaign submits"))
            })
            .collect();
        tickets.sort_by_key(|(i, _)| *i);
        tickets
            .into_iter()
            .map(|(_, ticket)| deterministic_surface(&ticket.wait().expect("campaign completes")))
            .collect()
    };

    let forward = run_schedule(2, false);
    let reversed = run_schedule(3, true);
    assert_eq!(forward.len(), reversed.len());
    for (i, (f, r)) in forward.iter().zip(&reversed).enumerate() {
        assert_eq!(f, r, "campaign {i} diverged between schedules");
    }
}

#[test]
fn parent_pool_stays_bounded_over_a_long_campaign_stream() {
    // More tenants than pool slots: every worker's pool (capacity 1 for
    // the capped tenant, 2 otherwise) must evict rather than grow, and
    // the outputs must stay byte-identical to the scoped path throughout
    // - an evicted-and-rebooted parent is indistinguishable from a
    // cached one.
    const TENANTS: usize = 3;
    const ROUNDS: usize = 3;
    let exec = CampaignExecutor::new(ExecutorConfig { workers: 2, parents_per_worker: 2 });
    exec.set_tenant_limits(
        "tenant0",
        TenantLimits { max_parents_per_worker: Some(1), model_cache_bytes: None },
    );

    let specs: Vec<RecordingSpec> =
        (0..TENANTS as u64).map(|t| small_spec(vec![t, t + 1])).collect();
    let goldens: Vec<_> =
        specs.iter().map(|spec| record_campaign(spec).expect("scoped path records")).collect();

    let mut tickets = Vec::new();
    for _ in 0..ROUNDS {
        for (t, spec) in specs.iter().enumerate() {
            let tenant = format!("tenant{t}");
            tickets.push((t, exec.submit(request(&tenant, spec.clone())).expect("submits")));
        }
    }
    for (t, ticket) in tickets {
        let output = ticket.wait().expect("campaign completes");
        assert_eq!(output.trials, goldens[t].trials, "tenant{t} transcript diverged");
        let merged = json::parse(&output.counters.to_json()).expect("merged telemetry parses");
        assert_eq!(merged, goldens[t].telemetry, "tenant{t} telemetry diverged");
    }

    let stats = exec.stats();
    assert_eq!(stats.campaigns, (TENANTS * ROUNDS) as u64);
    assert_eq!(stats.trials_completed, stats.trials_submitted);
    assert_eq!(
        stats.parent_boots + stats.fork_hits,
        stats.trials_completed,
        "every trial is served by exactly one boot-or-fork"
    );
    // The bound the soak exists to prove: each worker keeps one pool per
    // tenant, capped at that tenant's `max_parents_per_worker` (the
    // executor default otherwise), so resident parents never exceed
    // workers x the summed per-tenant caps — O(configuration), not
    // O(campaigns served). tenant0 is capped at 1 but runs 2 boot seeds,
    // so it must evict every round rather than grow.
    let caps_per_worker = 1 + 2 + 2;
    let capacity = (stats.workers * caps_per_worker) as u64;
    assert!(
        stats.pool_parents <= capacity,
        "pool holds {} parents, capacity is {capacity}",
        stats.pool_parents
    );
    assert!(stats.evictions > 0, "the capped tenant must evict, not accumulate");
    assert!(stats.pool_model_cache_bytes > 0, "resident parents publish their footprint");
}
