//! Property-based tests of the allocator's core invariants.

use std::collections::HashSet;

use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};
use cta_mem::{
    AllocError, BuddyAllocator, GfpFlags, MemoryMap, Pfn, PtpLayout, PtpSpec, ZonedAllocator,
    PAGE_SIZE,
};
use proptest::prelude::*;

/// A random interleaving of allocs and frees, as (order, free-index) pairs.
fn ops() -> impl Strategy<Value = Vec<(u8, usize)>> {
    proptest::collection::vec((0u8..5, 0usize..8), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Live buddy blocks never overlap, and the free-page count is exact.
    #[test]
    fn buddy_blocks_never_overlap(ops in ops()) {
        let total = 256u64;
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(total));
        let mut live: Vec<(Pfn, u8)> = Vec::new();
        for (order, idx) in ops {
            if idx % 3 == 0 && !live.is_empty() {
                let (p, o) = live.swap_remove(idx % live.len());
                b.free(p, o).unwrap();
            } else if let Ok(p) = b.alloc(order) {
                live.push((p, order));
            }
            // Invariants after every step:
            let mut frames = HashSet::new();
            let mut used = 0u64;
            for (p, o) in &live {
                for f in p.0..p.0 + (1u64 << o) {
                    prop_assert!(frames.insert(f), "frame {f} doubly owned");
                    prop_assert!(f < total);
                }
                used += 1u64 << o;
            }
            prop_assert_eq!(b.free_pages(), total - used);
        }
        for (p, o) in live {
            b.free(p, o).unwrap();
        }
        prop_assert_eq!(b.free_pages(), total);
        prop_assert_eq!(b.allocated_blocks(), 0);
    }

    /// Freeing everything always coalesces back to the pristine state.
    #[test]
    fn buddy_free_all_restores_pristine(orders in proptest::collection::vec(0u8..6, 1..40)) {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(512));
        let pristine = b.clone();
        let mut live = Vec::new();
        for o in orders {
            if let Ok(p) = b.alloc(o) {
                live.push((p, o));
            }
        }
        for (p, o) in live.into_iter().rev() {
            b.free(p, o).unwrap();
        }
        prop_assert_eq!(b, pristine);
    }

    /// Under CTA, no ordinary allocation ever lands at or above the low
    /// water mark, and no PTP allocation ever lands below it — for any
    /// alternation period and PTP size.
    #[test]
    fn low_water_mark_separates_allocations(
        period in prop_oneof![Just(64u64), Just(128), Just(256)],
        ptp_mb in prop_oneof![Just(2u64), Just(4), Just(8)],
        ops in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let total = 64u64 << 20;
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let cells = CellTypeMap::from_layout(
            &g,
            CellLayout::Alternating { period_rows: period, first: CellType::True },
        );
        let layout = PtpLayout::build(
            &cells,
            total,
            &PtpSpec::paper_default().with_size(ptp_mb << 20),
        )
        .unwrap();
        let mark = layout.low_water_mark();
        let mut a = ZonedAllocator::new(MemoryMap::x86_64(total).with_cta(layout));
        for want_ptp in ops {
            let gfp = if want_ptp { GfpFlags::PTP } else { GfpFlags::HIGHUSER };
            match a.alloc_pages(gfp, 0) {
                Ok(p) => {
                    let addr = p.addr().0;
                    if want_ptp {
                        prop_assert!(addr >= mark, "PTP page {addr:#x} below mark {mark:#x}");
                    } else {
                        prop_assert!(addr < mark, "user page {addr:#x} above mark {mark:#x}");
                    }
                }
                Err(AllocError::OutOfMemory { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            }
        }
    }

    /// PTP sub-zones are exactly the true-cell rows above the mark: every
    /// PTP allocation lands in a true-cell row.
    #[test]
    fn ptp_pages_are_true_cells(period in prop_oneof![Just(64u64), Just(128)], seed in any::<u64>()) {
        let _ = seed;
        let total = 64u64 << 20;
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let layout_cells = CellLayout::Alternating { period_rows: period, first: CellType::True };
        let cells = CellTypeMap::from_layout(&g, layout_cells);
        let ptp = PtpLayout::build(&cells, total, &PtpSpec::paper_default().with_size(4 << 20))
            .unwrap();
        let mut a = ZonedAllocator::new(MemoryMap::x86_64(total).with_cta(ptp));
        for _ in 0..64 {
            let Ok(p) = a.alloc_pages(GfpFlags::PTP, 0) else { break };
            let row = cta_dram::RowId(p.addr().0 / (64 * 1024));
            prop_assert_eq!(layout_cells.cell_type(row), CellType::True);
        }
    }

    /// Allocator conservation: pages out + pages free == total, always.
    #[test]
    fn page_conservation(ops in proptest::collection::vec((any::<bool>(), 0u8..4), 1..80)) {
        let total_bytes = 32u64 << 20;
        let mut a = ZonedAllocator::new(MemoryMap::x86_64(total_bytes));
        let total_pages = total_bytes / PAGE_SIZE;
        let mut live: Vec<(Pfn, u8)> = Vec::new();
        for (do_free, order) in ops {
            if do_free && !live.is_empty() {
                let (p, o) = live.pop().unwrap();
                a.free_pages(p, o).unwrap();
            } else if let Ok(p) = a.alloc_pages(GfpFlags::KERNEL, order) {
                live.push((p, order));
            }
            let out: u64 = live.iter().map(|(_, o)| 1u64 << o).sum();
            prop_assert_eq!(a.free_page_count() + out, total_pages);
        }
    }
}
