use std::collections::{BTreeSet, HashMap};

use crate::error::AllocError;
use crate::frame::Pfn;

/// Largest block order plus one, as in Linux (`MAX_ORDER = 11` ⇒ blocks of
/// up to 2¹⁰ = 1024 pages = 4 MiB).
pub const MAX_ORDER: u8 = 11;

/// A binary buddy allocator over a contiguous frame range.
///
/// This is the classic Linux per-zone buddy system: free blocks of order
/// `k` cover `2^k` naturally aligned frames; freeing coalesces a block with
/// its buddy (`pfn ^ 2^k`) whenever the buddy is also free, restoring
/// maximal blocks. Free lists are ordered sets so allocation is
/// lowest-address-first and deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuddyAllocator {
    start: u64,
    end: u64,
    free_lists: Vec<BTreeSet<u64>>,
    allocated: HashMap<u64, u8>,
    free_pages: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over frames `[start, end)`, all initially free.
    ///
    /// The range need not be aligned; it is greedily covered with maximal
    /// naturally aligned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` — an empty zone is a configuration bug.
    pub fn new(start: Pfn, end: Pfn) -> Self {
        assert!(start < end, "buddy range must be nonempty");
        let mut a = BuddyAllocator {
            start: start.0,
            end: end.0,
            free_lists: vec![BTreeSet::new(); MAX_ORDER as usize],
            allocated: HashMap::new(),
            free_pages: 0,
        };
        let mut pfn = start.0;
        while pfn < end.0 {
            // Largest order that keeps the block naturally aligned and in range.
            let align_order = pfn.trailing_zeros().min(MAX_ORDER as u32 - 1) as u8;
            let mut order = align_order;
            while order > 0 && pfn + (1 << order) > end.0 {
                order -= 1;
            }
            a.free_lists[order as usize].insert(pfn);
            a.free_pages += 1 << order;
            pfn += 1 << order;
        }
        a
    }

    /// First frame covered (inclusive).
    pub fn start(&self) -> Pfn {
        Pfn(self.start)
    }

    /// One past the last frame covered (exclusive).
    pub fn end(&self) -> Pfn {
        Pfn(self.end)
    }

    /// Number of currently free frames.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Total frames managed.
    pub fn total_pages(&self) -> u64 {
        self.end - self.start
    }

    /// Whether `pfn` lies in the managed range.
    pub fn contains(&self, pfn: Pfn) -> bool {
        (self.start..self.end).contains(&pfn.0)
    }

    /// Largest order with a free block, or `None` if empty.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..MAX_ORDER).rev().find(|&o| !self.free_lists[o as usize].is_empty())
    }

    /// Allocates a naturally aligned block of `2^order` frames.
    ///
    /// # Errors
    ///
    /// - [`AllocError::OrderTooLarge`] if `order >= MAX_ORDER`;
    /// - [`AllocError::OutOfMemory`] (with a placeholder zone kind filled in
    ///   by the caller) is *not* produced here; an exhausted allocator
    ///   returns `Ok(None)`-like behavior via `Err(AllocError::OutOfMemory)`
    ///   with [`ZoneKind::Normal`](crate::ZoneKind) — zone-level callers
    ///   re-tag it.
    pub fn alloc(&mut self, order: u8) -> Result<Pfn, AllocError> {
        if order >= MAX_ORDER {
            return Err(AllocError::OrderTooLarge { order });
        }
        // Find the smallest order with a free block.
        let mut have = order;
        while (have as usize) < self.free_lists.len() && self.free_lists[have as usize].is_empty() {
            have += 1;
        }
        if have >= MAX_ORDER {
            return Err(AllocError::OutOfMemory { zone: crate::ZoneKind::Normal, order });
        }
        let block = *self.free_lists[have as usize].iter().next().expect("nonempty");
        self.free_lists[have as usize].remove(&block);
        // Split down to the requested order, freeing upper halves.
        let mut current = have;
        while current > order {
            current -= 1;
            let buddy = block + (1u64 << current);
            self.free_lists[current as usize].insert(buddy);
        }
        self.allocated.insert(block, order);
        self.free_pages -= 1 << order;
        Ok(Pfn(block))
    }

    /// Frees a block previously returned by [`alloc`](Self::alloc),
    /// coalescing with free buddies.
    ///
    /// # Errors
    ///
    /// - [`AllocError::NotAllocated`] if `pfn` is not an allocated block
    ///   start;
    /// - [`AllocError::OrderMismatch`] if the order differs from the
    ///   allocation.
    pub fn free(&mut self, pfn: Pfn, order: u8) -> Result<(), AllocError> {
        match self.allocated.get(&pfn.0) {
            None => return Err(AllocError::NotAllocated { pfn }),
            Some(&a) if a != order => {
                return Err(AllocError::OrderMismatch { pfn, allocated: a, freed: order })
            }
            Some(_) => {}
        }
        self.allocated.remove(&pfn.0);
        self.free_pages += 1 << order;
        let mut block = pfn.0;
        let mut order = order;
        while order + 1 < MAX_ORDER {
            let buddy = block ^ (1u64 << order);
            // The buddy must be wholly inside the range and free at the
            // same order to coalesce.
            if buddy < self.start
                || buddy + (1 << order) > self.end
                || !self.free_lists[order as usize].remove(&buddy)
            {
                break;
            }
            block = block.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(block);
        Ok(())
    }

    /// Number of live allocations (for leak checks in tests).
    pub fn allocated_blocks(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let b = BuddyAllocator::new(Pfn(0), Pfn(1024));
        assert_eq!(b.free_pages(), 1024);
        assert_eq!(b.total_pages(), 1024);
        assert_eq!(b.largest_free_order(), Some(MAX_ORDER - 1));
    }

    #[test]
    fn alloc_free_round_trip_restores_state() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(1024));
        let before = b.clone();
        let p = b.alloc(3).unwrap();
        assert_eq!(b.free_pages(), 1024 - 8);
        b.free(p, 3).unwrap();
        assert_eq!(b, before, "coalescing must fully restore the initial state");
    }

    #[test]
    fn allocations_are_naturally_aligned() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(1024));
        for order in 0..MAX_ORDER {
            let p = b.alloc(order).unwrap();
            assert_eq!(p.0 % (1 << order), 0, "order {order} block misaligned");
            b.free(p, order).unwrap();
        }
    }

    #[test]
    fn alloc_exhaustion() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(4));
        let mut pages = Vec::new();
        for _ in 0..4 {
            pages.push(b.alloc(0).unwrap());
        }
        assert!(matches!(b.alloc(0), Err(AllocError::OutOfMemory { .. })));
        assert_eq!(b.free_pages(), 0);
        for p in pages {
            b.free(p, 0).unwrap();
        }
        assert_eq!(b.free_pages(), 4);
    }

    #[test]
    fn double_free_rejected() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(16));
        let p = b.alloc(1).unwrap();
        b.free(p, 1).unwrap();
        assert!(matches!(b.free(p, 1), Err(AllocError::NotAllocated { .. })));
    }

    #[test]
    fn wrong_order_free_rejected() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(16));
        let p = b.alloc(2).unwrap();
        assert!(matches!(
            b.free(p, 1),
            Err(AllocError::OrderMismatch { allocated: 2, freed: 1, .. })
        ));
        b.free(p, 2).unwrap();
    }

    #[test]
    fn order_too_large_rejected() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(16));
        assert!(matches!(b.alloc(MAX_ORDER), Err(AllocError::OrderTooLarge { .. })));
    }

    #[test]
    fn unaligned_range_is_covered_exactly() {
        let b = BuddyAllocator::new(Pfn(3), Pfn(21));
        assert_eq!(b.free_pages(), 18);
        assert!(b.contains(Pfn(3)));
        assert!(b.contains(Pfn(20)));
        assert!(!b.contains(Pfn(21)));
        assert!(!b.contains(Pfn(2)));
    }

    #[test]
    fn unaligned_range_allocations_stay_in_range() {
        let mut b = BuddyAllocator::new(Pfn(3), Pfn(21));
        let mut got = Vec::new();
        while let Ok(p) = b.alloc(0) {
            assert!((3..21).contains(&p.0));
            got.push(p.0);
        }
        got.sort_unstable();
        assert_eq!(got, (3..21).collect::<Vec<_>>());
    }

    #[test]
    fn split_then_coalesce_across_many_orders() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(256));
        let initial = b.clone();
        let mut blocks = Vec::new();
        // Fragment the arena with mixed orders, then free in reverse.
        for order in [0u8, 4, 2, 0, 6, 1, 3] {
            blocks.push((b.alloc(order).unwrap(), order));
        }
        for (p, o) in blocks.into_iter().rev() {
            b.free(p, o).unwrap();
        }
        assert_eq!(b, initial);
    }

    #[test]
    fn lowest_address_first_policy() {
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(64));
        let a = b.alloc(0).unwrap();
        let c = b.alloc(0).unwrap();
        assert!(a < c, "allocation order should ascend from the bottom");
        assert_eq!(a, Pfn(0));
    }
}
