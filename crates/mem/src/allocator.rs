use std::ops::Range;

use crate::cta::PtpLayout;
use crate::error::AllocError;
use crate::frame::{Pfn, PAGE_SIZE};
use crate::gfp::{GfpFlags, ZonePreference};
use crate::stats::AllocStats;
use crate::zone::{SubZoneSpec, Zone, ZoneKind};

/// Declarative description of a machine's physical-memory zones, from which
/// a [`ZonedAllocator`] is built.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryMap {
    total_bytes: u64,
    zones: Vec<(ZoneKind, Vec<SubZoneSpec>)>,
    ptp: Option<PtpLayout>,
    strict_user: bool,
}

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

impl MemoryMap {
    /// The x86-64 layout (Figure 6b): `ZONE_DMA` 0–16 MiB, `ZONE_DMA32`
    /// 16 MiB–4 GiB, `ZONE_NORMAL` above 4 GiB.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a positive multiple of [`PAGE_SIZE`].
    pub fn x86_64(total_bytes: u64) -> Self {
        let boundaries =
            [(ZoneKind::Dma, 0), (ZoneKind::Dma32, 16 * MIB), (ZoneKind::Normal, 4 * GIB)];
        Self::from_boundaries(total_bytes, &boundaries)
    }

    /// The 32-bit x86 layout (Figure 6a): `ZONE_DMA` 0–16 MiB,
    /// `ZONE_NORMAL` 16–896 MiB, `ZONE_HIGHMEM` above 896 MiB.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a positive multiple of [`PAGE_SIZE`].
    pub fn x86_32(total_bytes: u64) -> Self {
        let boundaries =
            [(ZoneKind::Dma, 0), (ZoneKind::Normal, 16 * MIB), (ZoneKind::HighMem, 896 * MIB)];
        Self::from_boundaries(total_bytes, &boundaries)
    }

    fn from_boundaries(total_bytes: u64, boundaries: &[(ZoneKind, u64)]) -> Self {
        assert!(
            total_bytes > 0 && total_bytes.is_multiple_of(PAGE_SIZE),
            "memory must be page aligned"
        );
        let mut zones = Vec::new();
        for (i, (kind, start)) in boundaries.iter().enumerate() {
            let end =
                boundaries.get(i + 1).map(|(_, s)| *s).unwrap_or(total_bytes).min(total_bytes);
            if *start >= end {
                continue;
            }
            zones.push((*kind, vec![SubZoneSpec::plain(start / PAGE_SIZE..end / PAGE_SIZE)]));
        }
        MemoryMap { total_bytes, zones, ptp: None, strict_user: false }
    }

    /// The CATT layout (Brasser et al., the paper's section 2.5 point of
    /// comparison): kernel memory — including all page tables — lives in a
    /// low partition, user memory in a high partition, separated by a
    /// guard gap neither side may allocate, and **neither class of request
    /// ever falls back into the other's partition**.
    ///
    /// # Panics
    ///
    /// Panics unless `user_bytes + guard_bytes < total_bytes` and all sizes
    /// are page-aligned.
    pub fn x86_64_with_catt(total_bytes: u64, user_bytes: u64, guard_bytes: u64) -> Self {
        assert!(total_bytes.is_multiple_of(PAGE_SIZE) && user_bytes.is_multiple_of(PAGE_SIZE));
        assert!(guard_bytes.is_multiple_of(PAGE_SIZE));
        assert!(user_bytes + guard_bytes < total_bytes, "no room for the kernel partition");
        let kernel_top = total_bytes - user_bytes - guard_bytes;
        let mut map = Self::from_boundaries(
            kernel_top,
            &[(ZoneKind::Dma, 0), (ZoneKind::Dma32, 16 * MIB), (ZoneKind::Normal, 4 * GIB)],
        );
        map.total_bytes = total_bytes;
        map.zones.push((
            ZoneKind::HighMem,
            vec![SubZoneSpec::plain(
                (total_bytes - user_bytes) / PAGE_SIZE..total_bytes / PAGE_SIZE,
            )],
        ));
        map.strict_user = true;
        map
    }

    /// Applies a CTA [`PtpLayout`]: clips ordinary zones at the low water
    /// mark, adds `ZONE_PTP` from the layout's true-cell sub-zones, and
    /// carves any trusted stripes out of the zones that contain them.
    ///
    /// # Panics
    ///
    /// Panics if the layout was computed for a different memory size.
    pub fn with_cta(mut self, layout: PtpLayout) -> Self {
        assert_eq!(
            layout.total_bytes(),
            self.total_bytes,
            "PTP layout and memory map disagree on memory size"
        );
        let mark_pfn = layout.low_water_mark() / PAGE_SIZE;
        let trusted: Vec<Range<u64>> = layout
            .trusted_ranges()
            .iter()
            .map(|r| r.start / PAGE_SIZE..r.end / PAGE_SIZE)
            .collect();
        let mut zones = Vec::new();
        for (kind, specs) in self.zones.drain(..) {
            let mut clipped = Vec::new();
            for spec in specs {
                let range = spec.pfn_range.start..spec.pfn_range.end.min(mark_pfn);
                if range.start >= range.end {
                    continue;
                }
                clipped.extend(carve_trusted(range, &trusted));
            }
            if !clipped.is_empty() {
                zones.push((kind, clipped));
            }
        }
        zones.push((
            ZoneKind::Ptp,
            layout
                .subzone_pfn_ranges()
                .into_iter()
                .map(|(r, level)| SubZoneSpec { pfn_range: r, level, trusted_only: false })
                .collect(),
        ));
        MemoryMap {
            total_bytes: self.total_bytes,
            zones,
            ptp: Some(layout),
            strict_user: self.strict_user,
        }
    }

    /// Total physical memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The CTA layout, when applied.
    pub fn ptp_layout(&self) -> Option<&PtpLayout> {
        self.ptp.as_ref()
    }

    /// Zone kinds and their sub-zone specs.
    pub fn zones(&self) -> &[(ZoneKind, Vec<SubZoneSpec>)] {
        &self.zones
    }
}

/// Splits `range` into plain and trusted-only sub-zone specs around the
/// (sorted, disjoint) trusted stripes.
fn carve_trusted(range: Range<u64>, trusted: &[Range<u64>]) -> Vec<SubZoneSpec> {
    let mut out = Vec::new();
    let mut cursor = range.start;
    for stripe in trusted {
        if stripe.end <= range.start || stripe.start >= range.end {
            continue;
        }
        let s = stripe.start.max(range.start);
        let e = stripe.end.min(range.end);
        if cursor < s {
            out.push(SubZoneSpec::plain(cursor..s));
        }
        out.push(SubZoneSpec { pfn_range: s..e, level: None, trusted_only: true });
        cursor = e;
    }
    if cursor < range.end {
        out.push(SubZoneSpec::plain(cursor..range.end));
    }
    out
}

/// The zoned buddy allocator (Figure 7).
///
/// Requests carry [`GfpFlags`]; ordinary requests start at their preferred
/// zone and fall back down the zonelist (`NORMAL → DMA32 → DMA` on x86-64).
/// `__GFP_PTP` requests are served from `ZONE_PTP` **only** (Rule 1), and
/// `ZONE_PTP` never serves anything else (Rule 2) because it is excluded
/// from every fallback list.
#[derive(Debug, Clone, PartialEq)]
pub struct ZonedAllocator {
    zones: Vec<Zone>,
    total_bytes: u64,
    ptp: Option<PtpLayout>,
    strict_user: bool,
    stats: AllocStats,
}

impl ZonedAllocator {
    /// Builds the allocator for a memory map.
    pub fn new(map: MemoryMap) -> Self {
        let zones = map
            .zones
            .iter()
            .map(|(kind, specs)| Zone::from_subzones(*kind, specs.clone()))
            .collect();
        ZonedAllocator {
            zones,
            total_bytes: map.total_bytes,
            ptp: map.ptp,
            strict_user: map.strict_user,
            stats: AllocStats::default(),
        }
    }

    /// Whether user allocations are hard-partitioned (CATT layout).
    pub fn strict_user(&self) -> bool {
        self.strict_user
    }

    /// Total physical memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The CTA layout, when enabled.
    pub fn ptp_layout(&self) -> Option<&PtpLayout> {
        self.ptp.as_ref()
    }

    /// Whether CTA (a `ZONE_PTP`) is active.
    pub fn cta_enabled(&self) -> bool {
        self.ptp.is_some()
    }

    /// All zones in map order.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone of a given kind, if present.
    pub fn zone(&self, kind: ZoneKind) -> Option<&Zone> {
        self.zones.iter().find(|z| z.kind() == kind)
    }

    /// Global allocation statistics.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Snapshots allocator telemetry into `c`: the global dispatch
    /// counters under `alloc` and each zone's counters under
    /// `zone:<ZONE_NAME>`.
    pub fn record_counters(&self, c: &mut cta_telemetry::Counters) {
        c.record(&self.stats);
        for zone in &self.zones {
            c.record_as(&format!("zone:{}", zone.kind()), zone.stats());
        }
    }

    /// Free frames across all zones.
    pub fn free_page_count(&self) -> u64 {
        self.zones.iter().map(|z| z.free_pages()).sum()
    }

    /// Allocates `2^order` frames per `gfp` (Figure 7's dispatch).
    ///
    /// # Errors
    ///
    /// - [`AllocError::NoPtpZone`] for `__GFP_PTP` without CTA;
    /// - [`AllocError::OutOfMemory`] when every eligible zone is exhausted
    ///   (for `__GFP_PTP`, when `ZONE_PTP` is exhausted — no fallback);
    /// - [`AllocError::OrderTooLarge`] for oversized requests.
    pub fn alloc_pages(&mut self, gfp: GfpFlags, order: u8) -> Result<Pfn, AllocError> {
        if gfp.ptp {
            let zone = self
                .zones
                .iter_mut()
                .find(|z| z.kind() == ZoneKind::Ptp)
                .ok_or(AllocError::NoPtpZone)?;
            return match zone.alloc(order, gfp.ptp_level, true) {
                Ok(pfn) => {
                    self.stats.ptp_allocations += 1;
                    Ok(pfn)
                }
                Err(e) => {
                    self.stats.ptp_failures += 1;
                    Err(e)
                }
            };
        }
        let allow_trusted = gfp.zone != ZonePreference::HighUser;
        let start_height = match gfp.zone {
            ZonePreference::Dma => 0,
            ZonePreference::Dma32 => 1,
            ZonePreference::Normal => 2,
            ZonePreference::HighUser => 3,
        };
        // CATT: user requests are confined to the user partition; they must
        // never spill into kernel memory (and kernel preferences already
        // never climb into HighMem).
        let stop_height =
            if self.strict_user && gfp.zone == ZonePreference::HighUser { 3 } else { 0 };
        let mut attempt = 0u32;
        for height in (stop_height..=start_height).rev() {
            let Some(zone) = self.zones.iter_mut().find(|z| z.kind().height() == Some(height))
            else {
                continue;
            };
            match zone.alloc(order, None, allow_trusted) {
                Ok(pfn) => {
                    if attempt == 0 {
                        self.stats.primary_hits += 1;
                    } else {
                        self.stats.fallbacks += 1;
                    }
                    return Ok(pfn);
                }
                Err(AllocError::OutOfMemory { .. }) => {
                    attempt += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.failures += 1;
        Err(AllocError::OutOfMemory {
            zone: self
                .zones
                .iter()
                .map(|z| z.kind())
                .find(|k| k.height() == Some(start_height))
                .unwrap_or(ZoneKind::Normal),
            order,
        })
    }

    /// Convenience: a single zeroable page with `gfp`.
    ///
    /// # Errors
    ///
    /// See [`alloc_pages`](Self::alloc_pages).
    pub fn alloc_page(&mut self, gfp: GfpFlags) -> Result<Pfn, AllocError> {
        self.alloc_pages(gfp, 0)
    }

    /// Frees a block wherever it lives.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownFrame`] if no zone manages `pfn`; otherwise the
    /// zone's errors.
    pub fn free_pages(&mut self, pfn: Pfn, order: u8) -> Result<(), AllocError> {
        for zone in &mut self.zones {
            if zone.manages(pfn) {
                return zone.free(pfn, order);
            }
        }
        Err(AllocError::UnknownFrame { pfn })
    }

    /// The zone kind managing `pfn`, if any.
    pub fn zone_of(&self, pfn: Pfn) -> Option<ZoneKind> {
        self.zones.iter().find(|z| z.manages(pfn)).map(|z| z.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cta::{PtpLayout, PtpSpec};
    use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};

    #[test]
    fn x86_64_small_memory_has_dma_and_dma32() {
        let map = MemoryMap::x86_64(64 * MIB);
        let kinds: Vec<ZoneKind> = map.zones().iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, vec![ZoneKind::Dma, ZoneKind::Dma32]);
    }

    #[test]
    fn x86_64_large_memory_has_normal() {
        let map = MemoryMap::x86_64(8 * GIB);
        let kinds: Vec<ZoneKind> = map.zones().iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, vec![ZoneKind::Dma, ZoneKind::Dma32, ZoneKind::Normal]);
        let (_, normal) = &map.zones()[2];
        assert_eq!(normal[0].pfn_range.clone(), (4 * GIB / PAGE_SIZE)..(8 * GIB / PAGE_SIZE));
    }

    #[test]
    fn x86_32_layout_matches_figure_6a() {
        let map = MemoryMap::x86_32(2 * GIB);
        let kinds: Vec<ZoneKind> = map.zones().iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, vec![ZoneKind::Dma, ZoneKind::Normal, ZoneKind::HighMem]);
    }

    #[test]
    fn normal_request_falls_back_downward() {
        let map = MemoryMap::x86_64(32 * MIB); // DMA 16 MiB + DMA32 16 MiB
        let mut a = ZonedAllocator::new(map);
        // Preference NORMAL: no NORMAL zone; served by DMA32 (fallback count
        // starts after the first *existing* zone attempt).
        let p = a.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
        assert_eq!(a.zone_of(p), Some(ZoneKind::Dma32));
        // Exhaust DMA32 → falls to DMA.
        let dma32_pages = a.zone(ZoneKind::Dma32).unwrap().free_pages();
        for _ in 0..dma32_pages {
            a.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
        }
        let q = a.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
        assert_eq!(a.zone_of(q), Some(ZoneKind::Dma));
        assert!(a.stats().fallbacks > 0);
    }

    #[test]
    fn dma_request_never_climbs() {
        let map = MemoryMap::x86_64(32 * MIB);
        let mut a = ZonedAllocator::new(map);
        let dma_pages = a.zone(ZoneKind::Dma).unwrap().free_pages();
        for _ in 0..dma_pages {
            let p = a.alloc_pages(GfpFlags::DMA, 0).unwrap();
            assert_eq!(a.zone_of(p), Some(ZoneKind::Dma));
        }
        assert!(matches!(a.alloc_pages(GfpFlags::DMA, 0), Err(AllocError::OutOfMemory { .. })));
    }

    fn cta_allocator() -> ZonedAllocator {
        // 64 MiB, 64 KiB rows, alternating every 128 rows; top 8 MiB anti.
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let cells = CellTypeMap::from_layout(
            &g,
            CellLayout::Alternating { period_rows: 128, first: CellType::True },
        );
        let layout =
            PtpLayout::build(&cells, 64 * MIB, &PtpSpec::paper_default().with_size(4 * MIB))
                .unwrap();
        ZonedAllocator::new(MemoryMap::x86_64(64 * MIB).with_cta(layout))
    }

    #[test]
    fn gfp_ptp_served_from_ptp_zone_only() {
        let mut a = cta_allocator();
        let p = a.alloc_pages(GfpFlags::PTP, 0).unwrap();
        assert_eq!(a.zone_of(p), Some(ZoneKind::Ptp));
        let mark = a.ptp_layout().unwrap().low_water_mark();
        assert!(p.addr().0 >= mark, "PTP pages live above the low water mark");
        assert_eq!(a.stats().ptp_allocations, 1);
    }

    #[test]
    fn gfp_ptp_does_not_fall_back_when_exhausted() {
        let mut a = cta_allocator();
        let ptp_pages = a.zone(ZoneKind::Ptp).unwrap().free_pages();
        for _ in 0..ptp_pages {
            a.alloc_pages(GfpFlags::PTP, 0).unwrap();
        }
        assert!(matches!(a.alloc_pages(GfpFlags::PTP, 0), Err(AllocError::OutOfMemory { .. })));
        assert_eq!(a.stats().ptp_failures, 1);
        // Plenty of ordinary memory remains — Rule 1 forbids using it.
        assert!(a.free_page_count() > 0);
    }

    #[test]
    fn ordinary_requests_never_touch_ptp_zone() {
        let mut a = cta_allocator();
        let mark = a.ptp_layout().unwrap().low_water_mark();
        let mut allocated = 0u64;
        while let Ok(p) = a.alloc_pages(GfpFlags::HIGHUSER, 0) {
            assert!(p.addr().0 < mark, "{p} breached the low water mark");
            allocated += 1;
        }
        // Everything below the mark got allocated; ZONE_PTP is untouched.
        assert_eq!(a.zone(ZoneKind::Ptp).unwrap().free_pages(), 4 * MIB / PAGE_SIZE);
        assert!(allocated > 0);
    }

    #[test]
    fn ptp_request_without_cta_fails() {
        let mut a = ZonedAllocator::new(MemoryMap::x86_64(32 * MIB));
        assert!(matches!(a.alloc_pages(GfpFlags::PTP, 0), Err(AllocError::NoPtpZone)));
    }

    #[test]
    fn trusted_stripes_excluded_from_user_allocations() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let cells = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let layout = PtpLayout::build(
            &cells,
            64 * MIB,
            &PtpSpec::paper_default().with_size(4 * MIB).with_two_zeros_restriction(true),
        )
        .unwrap();
        let trusted = layout.trusted_ranges().to_vec();
        let mut a = ZonedAllocator::new(MemoryMap::x86_64(64 * MIB).with_cta(layout));
        while let Ok(p) = a.alloc_pages(GfpFlags::HIGHUSER, 0) {
            let addr = p.addr().0;
            for r in &trusted {
                assert!(
                    !(r.start <= addr && addr < r.end),
                    "user page {addr:#x} in trusted stripe"
                );
            }
        }
        // The kernel can still use the stripes.
        let k = a.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
        let addr = k.addr().0;
        assert!(trusted.iter().any(|r| r.start <= addr && addr < r.end));
    }

    #[test]
    fn catt_layout_partitions_hard() {
        let total = 32 * MIB;
        let user = 8 * MIB;
        let guard = 64 * 1024;
        let mut a = ZonedAllocator::new(MemoryMap::x86_64_with_catt(total, user, guard));
        assert!(a.strict_user());
        let user_base = total - user;
        let kernel_top = total - user - guard;
        // Kernel pages stay below the kernel top.
        for _ in 0..64 {
            let p = a.alloc_pages(GfpFlags::KERNEL, 0).unwrap();
            assert!(p.addr().0 < kernel_top);
        }
        // User pages stay in the user partition, and exhaust without
        // spilling into kernel memory.
        let mut user_pages = 0u64;
        loop {
            match a.alloc_pages(GfpFlags::HIGHUSER, 0) {
                Ok(p) => {
                    assert!(p.addr().0 >= user_base);
                    user_pages += 1;
                }
                Err(AllocError::OutOfMemory { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(user_pages, user / PAGE_SIZE);
        // The guard gap belongs to no zone.
        assert_eq!(a.zone_of(Pfn(kernel_top / PAGE_SIZE)), None);
    }

    #[test]
    fn free_returns_pages_to_owning_zone() {
        let mut a = cta_allocator();
        let p = a.alloc_pages(GfpFlags::PTP, 0).unwrap();
        let free_before = a.zone(ZoneKind::Ptp).unwrap().free_pages();
        a.free_pages(p, 0).unwrap();
        assert_eq!(a.zone(ZoneKind::Ptp).unwrap().free_pages(), free_before + 1);
        assert!(matches!(
            a.free_pages(Pfn(u64::MAX / PAGE_SIZE), 0),
            Err(AllocError::UnknownFrame { .. })
        ));
    }

    #[test]
    fn with_cta_requires_matching_size() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let cells = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let layout =
            PtpLayout::build(&cells, 64 * MIB, &PtpSpec::paper_default().with_size(4 * MIB))
                .unwrap();
        let result = std::panic::catch_unwind(|| MemoryMap::x86_64(32 * MIB).with_cta(layout));
        assert!(result.is_err());
    }
}
