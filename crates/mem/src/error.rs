use std::error::Error;
use std::fmt;

use crate::frame::Pfn;
use crate::zone::ZoneKind;

/// Errors reported by the allocators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// No free block of the requested order in any eligible zone.
    OutOfMemory {
        /// The zone kind the request was ultimately charged against.
        zone: ZoneKind,
        /// Requested block order.
        order: u8,
    },
    /// A free was attempted for a block that is not currently allocated.
    NotAllocated {
        /// First frame of the supposed block.
        pfn: Pfn,
    },
    /// A free was attempted with the wrong order for the block.
    OrderMismatch {
        /// First frame of the block.
        pfn: Pfn,
        /// Order the block was allocated with.
        allocated: u8,
        /// Order passed to the free call.
        freed: u8,
    },
    /// A frame outside every zone was referenced.
    UnknownFrame {
        /// The frame.
        pfn: Pfn,
    },
    /// The requested order exceeds [`MAX_ORDER`](crate::MAX_ORDER).
    OrderTooLarge {
        /// Requested order.
        order: u8,
    },
    /// A `__GFP_PTP` request was made but the system has no `ZONE_PTP`
    /// (CTA is not enabled).
    NoPtpZone,
    /// A PTP spec asked for more true-cell capacity than exists above the
    /// feasible low water mark.
    InsufficientTrueCells {
        /// Bytes requested for `ZONE_PTP`.
        requested: u64,
        /// True-cell bytes available.
        available: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { zone, order } => {
                write!(f, "out of memory: no order-{order} block in {zone} or its fallbacks")
            }
            AllocError::NotAllocated { pfn } => write!(f, "{pfn} is not an allocated block"),
            AllocError::OrderMismatch { pfn, allocated, freed } => {
                write!(f, "{pfn} allocated at order {allocated} but freed at order {freed}")
            }
            AllocError::UnknownFrame { pfn } => write!(f, "{pfn} belongs to no zone"),
            AllocError::OrderTooLarge { order } => {
                write!(f, "order {order} exceeds MAX_ORDER {}", crate::MAX_ORDER)
            }
            AllocError::NoPtpZone => f.write_str("__GFP_PTP request but no ZONE_PTP configured"),
            AllocError::InsufficientTrueCells { requested, available } => write!(
                f,
                "ZONE_PTP wants {requested} bytes of true-cells but only {available} are available"
            ),
        }
    }
}

impl Error for AllocError {}
