use std::fmt;
use std::ops::Range;

use cta_dram::CellTypeMap;

use crate::error::AllocError;
use crate::frame::PAGE_SIZE;

/// x86-64 page-table levels, leaf first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PtLevel {
    /// Level-1 page table (PTEs mapping 4 KiB pages).
    Pt,
    /// Level-2 page directory.
    Pd,
    /// Level-3 page-directory-pointer table.
    Pdpt,
    /// Level-4 root.
    Pml4,
}

impl PtLevel {
    /// All levels, leaf first.
    pub const ALL: [PtLevel; 4] = [PtLevel::Pt, PtLevel::Pd, PtLevel::Pdpt, PtLevel::Pml4];

    /// 1-based level number (PT=1 … PML4=4).
    pub fn number(self) -> u8 {
        match self {
            PtLevel::Pt => 1,
            PtLevel::Pd => 2,
            PtLevel::Pdpt => 3,
            PtLevel::Pml4 => 4,
        }
    }

    /// The next level up, if any.
    pub fn parent(self) -> Option<PtLevel> {
        match self {
            PtLevel::Pt => Some(PtLevel::Pd),
            PtLevel::Pd => Some(PtLevel::Pdpt),
            PtLevel::Pdpt => Some(PtLevel::Pml4),
            PtLevel::Pml4 => None,
        }
    }
}

impl fmt::Display for PtLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PtLevel::Pt => "PT",
            PtLevel::Pd => "PD",
            PtLevel::Pdpt => "PDPT",
            PtLevel::Pml4 => "PML4",
        };
        f.write_str(s)
    }
}

/// Requested shape of `ZONE_PTP`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtpSpec {
    /// True-cell bytes to dedicate to page tables (the paper evaluates
    /// 32 MiB and 64 MiB). Must be a power of two and a multiple of
    /// [`PAGE_SIZE`].
    pub ptp_bytes: u64,
    /// Give each page-table level its own sub-zone, higher levels at higher
    /// addresses (section 7 extension). With `false`, one zone serves all
    /// levels (the paper's base design).
    pub multi_level: bool,
    /// Reserve physical stripes whose PTP-indicator has fewer than two `0`s
    /// for trusted allocations only, which drives the expected number of
    /// exploitable PTEs from ~6.7 down to ~4.7×10⁻⁶ (section 5).
    pub restrict_two_zeros: bool,
}

impl PtpSpec {
    /// The paper's default evaluation configuration: 32 MiB, single level,
    /// no indicator restriction.
    pub fn paper_default() -> Self {
        PtpSpec { ptp_bytes: 32 << 20, multi_level: false, restrict_two_zeros: false }
    }

    /// Builder-style size override.
    pub fn with_size(mut self, ptp_bytes: u64) -> Self {
        self.ptp_bytes = ptp_bytes;
        self
    }

    /// Builder-style multi-level toggle.
    pub fn with_multi_level(mut self, multi_level: bool) -> Self {
        self.multi_level = multi_level;
        self
    }

    /// Builder-style two-zeros restriction toggle.
    pub fn with_two_zeros_restriction(mut self, restrict: bool) -> Self {
        self.restrict_two_zeros = restrict;
        self
    }
}

/// A concrete `ZONE_PTP` placement computed from a cell-type map.
///
/// The layout walks true-cell regions from the **top** of physical memory
/// downwards, collecting `ptp_bytes` of true-cell capacity for page tables
/// and recording every anti-cell region passed over as *reserved* (unused —
/// the section 6.2 capacity loss). The **low water mark** is the lowest
/// address so touched: everything at or above it belongs to `ZONE_PTP`
/// (usable true-cell sub-zones + reserved anti-cell holes); everything below
/// is ordinary memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtpLayout {
    subzones: Vec<(Range<u64>, Option<PtLevel>)>,
    reserved_anti: Vec<Range<u64>>,
    low_water_mark: u64,
    total_bytes: u64,
    ptp_bytes: u64,
    trusted_ranges: Vec<Range<u64>>,
    screened_pages: Vec<u64>,
}

impl PtpLayout {
    /// Computes the layout for a module whose cell types are `map`.
    ///
    /// `total_bytes` is the physical memory size (a power of two).
    ///
    /// # Errors
    ///
    /// [`AllocError::InsufficientTrueCells`] if the map does not contain
    /// `ptp_bytes` of true-cell capacity.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes`/`ptp_bytes` are not powers of two, if
    /// `ptp_bytes >= total_bytes`, or if either is not page-aligned — these
    /// are configuration errors.
    pub fn build(map: &CellTypeMap, total_bytes: u64, spec: &PtpSpec) -> Result<Self, AllocError> {
        assert!(total_bytes.is_power_of_two(), "total memory must be a power of two");
        assert!(spec.ptp_bytes.is_power_of_two(), "ZONE_PTP size must be a power of two");
        assert!(spec.ptp_bytes < total_bytes, "ZONE_PTP must be smaller than memory");
        assert_eq!(spec.ptp_bytes % PAGE_SIZE, 0, "ZONE_PTP size must be page aligned");
        assert_eq!(total_bytes % PAGE_SIZE, 0, "memory size must be page aligned");

        // Walk true-cell regions from the top down, collecting capacity.
        let mut needed = spec.ptp_bytes;
        let mut true_chunks: Vec<Range<u64>> = Vec::new(); // descending
        let mut reserved_anti: Vec<Range<u64>> = Vec::new();
        let mut regions = map.regions();
        regions.retain(|r| (r.start_row.0 * map.row_bytes()) < total_bytes);
        for region in regions.iter().rev() {
            if needed == 0 {
                break;
            }
            let start = region.start_row.0 * map.row_bytes();
            let end = (region.end_row.0 * map.row_bytes()).min(total_bytes);
            match region.cell_type {
                cta_dram::CellType::Anti => reserved_anti.push(start..end),
                cta_dram::CellType::True => {
                    let take = needed.min(end - start);
                    true_chunks.push(end - take..end);
                    needed -= take;
                }
            }
        }
        if needed > 0 {
            return Err(AllocError::InsufficientTrueCells {
                requested: spec.ptp_bytes,
                available: spec.ptp_bytes - needed,
            });
        }
        let low_water_mark = true_chunks.last().expect("needed > 0 handled").start;
        // Anti regions collected below the mark are not actually inside the
        // zone; drop them.
        reserved_anti.retain(|r| r.start >= low_water_mark);
        reserved_anti.reverse(); // ascending
        true_chunks.reverse(); // ascending

        let subzones = if spec.multi_level {
            Self::split_levels(&true_chunks, spec.ptp_bytes)
        } else {
            true_chunks.iter().cloned().map(|r| (r, None)).collect()
        };

        let trusted_ranges = if spec.restrict_two_zeros {
            Self::one_zero_stripes(total_bytes, spec.ptp_bytes, low_water_mark)
        } else {
            Vec::new()
        };

        Ok(PtpLayout {
            subzones,
            reserved_anti,
            low_water_mark,
            total_bytes,
            ptp_bytes: spec.ptp_bytes,
            trusted_ranges,
            screened_pages: Vec::new(),
        })
    }

    /// Builds a layout directly from explicit sub-zone byte ranges — used
    /// by the hypervisor planner (section 7), which carves guest `ZONE_PTP`
    /// slices out of `ZONE_HYPERVISOR` while keeping the hypervisor-wide
    /// low water mark.
    ///
    /// # Panics
    ///
    /// Panics on empty or unaligned ranges — planner bugs.
    pub fn manual(
        subzones: Vec<Range<u64>>,
        low_water_mark: u64,
        total_bytes: u64,
        ptp_bytes: u64,
    ) -> Self {
        assert!(!subzones.is_empty(), "a layout needs at least one sub-zone");
        for r in &subzones {
            assert!(r.start < r.end && r.start % PAGE_SIZE == 0 && r.end % PAGE_SIZE == 0);
        }
        PtpLayout {
            subzones: subzones.into_iter().map(|r| (r, None)).collect(),
            reserved_anti: Vec::new(),
            low_water_mark,
            total_bytes,
            ptp_bytes,
            trusted_ranges: Vec::new(),
            screened_pages: Vec::new(),
        }
    }

    /// Returns the layout with the given page addresses carved out of its
    /// sub-zones — the section 7 *page-size-bit screening*: frames whose
    /// PS-bit cell positions are `1→0`-vulnerable must not host PD/PDPT
    /// tables, because a flipped PS bit would turn a table pointer into an
    /// attacker-readable huge-page mapping of the table area.
    ///
    /// # Panics
    ///
    /// Panics if a page is not page-aligned — screening results come from
    /// code that produces aligned addresses; anything else is a bug.
    pub fn with_screened_pages(mut self, pages: &[u64]) -> Self {
        let mut screened: Vec<u64> = pages.to_vec();
        screened.sort_unstable();
        screened.dedup();
        for page in &screened {
            assert_eq!(page % PAGE_SIZE, 0, "screened addresses must be page aligned");
        }
        let mut subzones = Vec::new();
        for (range, level) in self.subzones {
            let mut cursor = range.start;
            for page in screened.iter().filter(|p| range.contains(*p)) {
                if cursor < *page {
                    subzones.push((cursor..*page, level));
                }
                cursor = page + PAGE_SIZE;
            }
            if cursor < range.end {
                subzones.push((cursor..range.end, level));
            }
        }
        self.subzones = subzones;
        self.screened_pages = screened;
        self
    }

    /// Page addresses removed from the zone by PS-bit screening.
    pub fn screened_pages(&self) -> &[u64] {
        &self.screened_pages
    }

    /// Splits ascending true-cell chunks among the four levels: the leaf PT
    /// zone gets 13/16 of the capacity at the lowest addresses, PD 1/8,
    /// then PDPT and PML4 1/32 each at the very top — preserving the §7
    /// invariant that higher levels live at higher physical addresses.
    fn split_levels(chunks: &[Range<u64>], ptp_bytes: u64) -> Vec<(Range<u64>, Option<PtLevel>)> {
        let mut budgets = [
            (PtLevel::Pt, ptp_bytes / 16 * 13),
            (PtLevel::Pd, ptp_bytes / 8),
            (PtLevel::Pdpt, ptp_bytes / 32),
            (PtLevel::Pml4, ptp_bytes / 32),
        ];
        // Rounding dust goes to the leaf level.
        let assigned: u64 = budgets.iter().map(|(_, b)| *b).sum();
        budgets[0].1 += ptp_bytes - assigned;
        // Page-align every budget boundary.
        for (_, b) in budgets.iter_mut() {
            *b = (*b / PAGE_SIZE) * PAGE_SIZE;
        }
        let mut out = Vec::new();
        let mut level_idx = 0usize;
        let mut remaining = budgets[0].1;
        for chunk in chunks {
            let mut cursor = chunk.start;
            while cursor < chunk.end {
                while remaining == 0 && level_idx + 1 < budgets.len() {
                    level_idx += 1;
                    remaining = budgets[level_idx].1;
                }
                let take = remaining.min(chunk.end - cursor);
                if take == 0 {
                    // All budgets exhausted (alignment dust): tack the rest
                    // onto the last level.
                    out.push((cursor..chunk.end, Some(budgets[budgets.len() - 1].0)));
                    break;
                }
                out.push((cursor..cursor + take, Some(budgets[level_idx].0)));
                cursor += take;
                remaining -= take;
            }
        }
        // Merge adjacent same-level ranges produced by chunk boundaries.
        let mut merged: Vec<(Range<u64>, Option<PtLevel>)> = Vec::new();
        for (r, l) in out {
            if let Some((last, ll)) = merged.last_mut() {
                if *ll == l && last.end == r.start {
                    last.end = r.end;
                    continue;
                }
            }
            merged.push((r, l));
        }
        merged
    }

    /// The physical stripes (below the low water mark) whose PTP indicator
    /// contains exactly one `0` — reserved for trusted allocations under the
    /// two-zeros restriction.
    fn one_zero_stripes(total_bytes: u64, ptp_bytes: u64, low_water_mark: u64) -> Vec<Range<u64>> {
        let n = (total_bytes / ptp_bytes).trailing_zeros();
        let all_ones = total_bytes - ptp_bytes;
        let mut out = Vec::new();
        for i in 0..n {
            let base = all_ones & !(ptp_bytes << i);
            let range = base..base + ptp_bytes;
            // The stripe may be partially swallowed by ZONE_PTP when skipped
            // anti rows pushed the mark below total - ptp_bytes.
            if range.start >= low_water_mark {
                continue;
            }
            out.push(range.start..range.end.min(low_water_mark));
        }
        out.sort_by_key(|r| r.start);
        out
    }

    /// The low water mark: the byte address below which ordinary data lives
    /// and at or above which only `ZONE_PTP` lives.
    pub fn low_water_mark(&self) -> u64 {
        self.low_water_mark
    }

    /// Physical memory size the layout was computed for.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Usable true-cell bytes in the zone.
    pub fn ptp_bytes(&self) -> u64 {
        self.ptp_bytes
    }

    /// Width of the PTP indicator in bits:
    /// `log2(total_bytes) − log2(ptp_bytes)` (section 5's `n`).
    pub fn indicator_bits(&self) -> u32 {
        (self.total_bytes / self.ptp_bytes).trailing_zeros()
    }

    /// True-cell sub-zones in ascending byte order, with level tags when
    /// multi-level.
    pub fn subzones(&self) -> &[(Range<u64>, Option<PtLevel>)] {
        &self.subzones
    }

    /// Sub-zone byte ranges converted to frame ranges.
    pub fn subzone_pfn_ranges(&self) -> Vec<(Range<u64>, Option<PtLevel>)> {
        self.subzones.iter().map(|(r, l)| (r.start / PAGE_SIZE..r.end / PAGE_SIZE, *l)).collect()
    }

    /// Anti-cell byte ranges above the mark left unused.
    pub fn reserved_anti_ranges(&self) -> &[Range<u64>] {
        &self.reserved_anti
    }

    /// Bytes lost to reserved anti-cell rows (section 6.2).
    pub fn capacity_loss_bytes(&self) -> u64 {
        self.reserved_anti.iter().map(|r| r.end - r.start).sum()
    }

    /// Capacity loss as a fraction of total memory.
    pub fn capacity_loss_fraction(&self) -> f64 {
        self.capacity_loss_bytes() as f64 / self.total_bytes as f64
    }

    /// Byte ranges below the mark reserved for trusted allocations (empty
    /// unless the two-zeros restriction is on).
    pub fn trusted_ranges(&self) -> &[Range<u64>] {
        &self.trusted_ranges
    }

    /// Whether a physical byte address lies in `ZONE_PTP` (at or above the
    /// mark).
    pub fn is_above_mark(&self, addr: u64) -> bool {
        addr >= self.low_water_mark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::{AddressMapping, CellLayout, CellType, CellTypeMap, DramGeometry};

    /// 64 MiB of memory, 64 KiB rows, alternating every 128 rows (8 MiB
    /// runs), true-cells first ⇒ top run (56–64 MiB) is anti-cells.
    fn alternating_map() -> CellTypeMap {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        CellTypeMap::from_layout(
            &g,
            CellLayout::Alternating { period_rows: 128, first: CellType::True },
        )
    }

    #[test]
    fn layout_skips_top_anti_region() {
        let map = alternating_map();
        let spec = PtpSpec::paper_default().with_size(4 << 20);
        let layout = PtpLayout::build(&map, 64 << 20, &spec).unwrap();
        // Top 8 MiB (56..64 MiB) is anti: reserved. PTP sits at 52..56 MiB.
        assert_eq!(layout.low_water_mark(), 52 << 20);
        assert_eq!(layout.subzones().len(), 1);
        assert_eq!(layout.subzones()[0].0, (52 << 20)..(56 << 20));
        assert_eq!(layout.reserved_anti_ranges(), &[(56 << 20)..(64 << 20)]);
        assert_eq!(layout.capacity_loss_bytes(), 8 << 20);
        assert!((layout.capacity_loss_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn layout_spans_multiple_true_regions_when_needed() {
        let map = alternating_map();
        // 12 MiB > one 8 MiB true region: spans two regions, skipping the
        // anti region between them.
        let spec = PtpSpec::paper_default().with_size(16 << 20);
        let layout = PtpLayout::build(&map, 64 << 20, &spec).unwrap();
        assert_eq!(layout.subzones().len(), 2);
        let total: u64 = layout.subzones().iter().map(|(r, _)| r.end - r.start).sum();
        assert_eq!(total, 16 << 20);
        // Reserved: the 56-64 anti region and the 40-48 anti region.
        assert_eq!(layout.capacity_loss_bytes(), 16 << 20);
        assert_eq!(layout.low_water_mark(), 32 << 20);
    }

    #[test]
    fn all_true_layout_has_no_loss() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let spec = PtpSpec::paper_default().with_size(4 << 20);
        let layout = PtpLayout::build(&map, 64 << 20, &spec).unwrap();
        assert_eq!(layout.capacity_loss_bytes(), 0);
        assert_eq!(layout.low_water_mark(), 60 << 20);
    }

    #[test]
    fn all_anti_layout_fails() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllAnti);
        let spec = PtpSpec::paper_default().with_size(4 << 20);
        let err = PtpLayout::build(&map, 64 << 20, &spec).unwrap_err();
        assert!(matches!(err, AllocError::InsufficientTrueCells { .. }));
    }

    #[test]
    fn indicator_bits_matches_paper() {
        // 8 GiB with 32 MiB PTP ⇒ n = 8 (section 5).
        let g = DramGeometry::new(128 * 1024, 8192, 8, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let spec = PtpSpec::paper_default();
        let layout = PtpLayout::build(&map, 8 << 30, &spec).unwrap();
        assert_eq!(layout.indicator_bits(), 8);
    }

    #[test]
    fn multi_level_orders_levels_by_address() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let spec = PtpSpec::paper_default().with_size(4 << 20).with_multi_level(true);
        let layout = PtpLayout::build(&map, 64 << 20, &spec).unwrap();
        let mut last_level = 0u8;
        let mut last_end = 0u64;
        for (range, level) in layout.subzones() {
            let level = level.expect("multi-level tags every sub-zone");
            assert!(level.number() >= last_level, "levels ascend with address");
            assert!(range.start >= last_end);
            last_level = level.number();
            last_end = range.end;
        }
        // All four levels present and capacity preserved.
        let levels: std::collections::HashSet<u8> =
            layout.subzones().iter().filter_map(|(_, l)| l.map(|l| l.number())).collect();
        assert_eq!(levels.len(), 4);
        let total: u64 = layout.subzones().iter().map(|(r, _)| r.end - r.start).sum();
        assert_eq!(total, 4 << 20);
    }

    #[test]
    fn two_zero_restriction_builds_trusted_stripes() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let spec = PtpSpec::paper_default().with_size(4 << 20).with_two_zeros_restriction(true);
        let layout = PtpLayout::build(&map, 64 << 20, &spec).unwrap();
        // n = 4 indicator bits; all-ones block is ZONE_PTP itself; 4 one-zero
        // stripes of 4 MiB each below the mark.
        assert_eq!(layout.indicator_bits(), 4);
        assert_eq!(layout.trusted_ranges().len(), 4);
        for r in layout.trusted_ranges() {
            assert!(r.end <= layout.low_water_mark());
            assert_eq!(r.end - r.start, 4 << 20);
        }
        // 3.12% of memory for 8 GiB/32 MiB in the paper; here 4×4 MiB / 64 MiB = 25%
        // (small n makes the fraction large — the formula is (n choose 1)/2^n).
        let frac: u64 = layout.trusted_ranges().iter().map(|r| r.end - r.start).sum();
        assert_eq!(frac, 16 << 20);
    }

    #[test]
    fn paper_scale_two_zero_fraction() {
        // 8 GiB, 32 MiB PTP: stripes cover 8×32 MiB = 256 MiB = 3.125%,
        // matching the paper's (8 choose 1)/2^8 = 3.12%.
        let g = DramGeometry::new(128 * 1024, 8192, 8, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let spec = PtpSpec::paper_default().with_two_zeros_restriction(true);
        let layout = PtpLayout::build(&map, 8 << 30, &spec).unwrap();
        let covered: u64 = layout.trusted_ranges().iter().map(|r| r.end - r.start).sum();
        let frac = covered as f64 / (8u64 << 30) as f64;
        assert!((frac - 8.0 / 256.0).abs() < 1e-9, "frac={frac}");
    }

    #[test]
    fn screening_carves_pages_out_of_subzones() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let layout =
            PtpLayout::build(&map, 64 << 20, &PtpSpec::paper_default().with_size(4 << 20)).unwrap();
        let base = layout.low_water_mark();
        let bad = [base + 4096, base + 3 * 4096];
        let screened = layout.clone().with_screened_pages(&bad);
        assert_eq!(screened.screened_pages(), &bad);
        // Capacity shrinks by exactly two pages.
        let total: u64 = screened.subzones().iter().map(|(r, _)| r.end - r.start).sum();
        assert_eq!(total, (4 << 20) - 2 * 4096);
        // The screened pages are in no sub-zone.
        for page in bad {
            assert!(!screened.subzones().iter().any(|(r, _)| r.contains(&page)));
        }
        // Adjacent pages still are.
        assert!(screened.subzones().iter().any(|(r, _)| r.contains(&base)));
        assert!(screened.subzones().iter().any(|(r, _)| r.contains(&(base + 2 * 4096))));
    }

    #[test]
    fn screening_at_subzone_edges() {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let map = CellTypeMap::from_layout(&g, CellLayout::AllTrue);
        let layout =
            PtpLayout::build(&map, 64 << 20, &PtpSpec::paper_default().with_size(4 << 20)).unwrap();
        let (range, _) = layout.subzones()[0].clone();
        let screened = layout.clone().with_screened_pages(&[range.start, range.end - PAGE_SIZE]);
        for (r, _) in screened.subzones() {
            assert!(r.start < r.end, "no empty sub-zones");
        }
        let total: u64 = screened.subzones().iter().map(|(r, _)| r.end - r.start).sum();
        assert_eq!(total, (range.end - range.start) - 2 * PAGE_SIZE);
    }

    #[test]
    fn pt_level_helpers() {
        assert_eq!(PtLevel::Pt.parent(), Some(PtLevel::Pd));
        assert_eq!(PtLevel::Pml4.parent(), None);
        assert_eq!(PtLevel::Pml4.number(), 4);
        assert_eq!(PtLevel::Pdpt.to_string(), "PDPT");
    }

    #[test]
    fn is_above_mark() {
        let map = alternating_map();
        let layout =
            PtpLayout::build(&map, 64 << 20, &PtpSpec::paper_default().with_size(4 << 20)).unwrap();
        assert!(layout.is_above_mark(layout.low_water_mark()));
        assert!(!layout.is_above_mark(layout.low_water_mark() - 1));
    }
}
