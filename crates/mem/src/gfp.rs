use std::fmt;

/// Which zone an allocation request prefers (the "zone flag" portion of a
/// Linux GFP mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ZonePreference {
    /// Kernel allocations: start at `ZONE_NORMAL`, fall back downwards.
    #[default]
    Normal,
    /// 32-bit-DMA-capable memory: start at `ZONE_DMA32`.
    Dma32,
    /// Legacy-DMA memory: `ZONE_DMA` only.
    Dma,
    /// User/highmem allocations: start at the highest non-PTP zone.
    HighUser,
}

impl fmt::Display for ZonePreference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ZonePreference::Normal => "NORMAL",
            ZonePreference::Dma32 => "DMA32",
            ZonePreference::Dma => "DMA",
            ZonePreference::HighUser => "HIGHUSER",
        };
        f.write_str(s)
    }
}

/// Get-Free-Pages request flags.
///
/// A tiny structured stand-in for Linux's `gfp_t` covering what the paper's
/// patch touches: the zone preference, the new `__GFP_PTP` flag (the request
/// must be served from `ZONE_PTP` *only*, never falling back — Rule 1 of
/// section 6.1), the optional page-table level for the multi-level-zone
/// extension (section 7), and `__GFP_ZERO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GfpFlags {
    /// Zone preference for non-PTP requests.
    pub zone: ZonePreference,
    /// `__GFP_PTP`: serve from `ZONE_PTP` only.
    pub ptp: bool,
    /// Page-table level for multi-level PTP zones (`None` = single zone).
    pub ptp_level: Option<crate::cta::PtLevel>,
    /// Zero the pages before returning them.
    pub zero: bool,
}

impl GfpFlags {
    /// `GFP_KERNEL`: normal kernel allocation.
    pub const KERNEL: GfpFlags =
        GfpFlags { zone: ZonePreference::Normal, ptp: false, ptp_level: None, zero: false };

    /// `GFP_HIGHUSER`: user-page allocation.
    pub const HIGHUSER: GfpFlags =
        GfpFlags { zone: ZonePreference::HighUser, ptp: false, ptp_level: None, zero: false };

    /// `GFP_DMA`.
    pub const DMA: GfpFlags =
        GfpFlags { zone: ZonePreference::Dma, ptp: false, ptp_level: None, zero: false };

    /// `GFP_DMA32`.
    pub const DMA32: GfpFlags =
        GfpFlags { zone: ZonePreference::Dma32, ptp: false, ptp_level: None, zero: false };

    /// `__GFP_PTP`: page-table pages under CTA (zeroed, as `pte_alloc_one`
    /// does).
    pub const PTP: GfpFlags =
        GfpFlags { zone: ZonePreference::Normal, ptp: true, ptp_level: None, zero: true };

    /// Variant of [`PTP`](Self::PTP) targeting one level's sub-zone.
    pub fn ptp_for_level(level: crate::cta::PtLevel) -> GfpFlags {
        GfpFlags { ptp_level: Some(level), ..Self::PTP }
    }

    /// Request zeroed pages.
    pub fn zeroed(mut self) -> GfpFlags {
        self.zero = true;
        self
    }
}

impl fmt::Display for GfpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GFP_{}", self.zone)?;
        if self.ptp {
            f.write_str("|__GFP_PTP")?;
            if let Some(level) = self.ptp_level {
                write!(f, "({level})")?;
            }
        }
        if self.zero {
            f.write_str("|__GFP_ZERO")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cta::PtLevel;

    #[test]
    fn presets() {
        assert!(GfpFlags::PTP.ptp);
        assert!(GfpFlags::PTP.zero);
        assert!(!GfpFlags::KERNEL.ptp);
        assert_eq!(GfpFlags::HIGHUSER.zone, ZonePreference::HighUser);
    }

    #[test]
    fn ptp_for_level_sets_level() {
        let g = GfpFlags::ptp_for_level(PtLevel::Pdpt);
        assert_eq!(g.ptp_level, Some(PtLevel::Pdpt));
        assert!(g.ptp);
    }

    #[test]
    fn display_mentions_flags() {
        let s = GfpFlags::PTP.to_string();
        assert!(s.contains("__GFP_PTP"));
        assert!(s.contains("__GFP_ZERO"));
        assert_eq!(GfpFlags::KERNEL.to_string(), "GFP_NORMAL");
    }

    #[test]
    fn zeroed_builder() {
        assert!(GfpFlags::KERNEL.zeroed().zero);
    }
}
