use std::fmt;

/// Page size in bytes (x86-64 base pages).
pub const PAGE_SIZE: u64 = 4096;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The page frame containing this address.
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 / PAGE_SIZE)
    }

    /// Whether the address is page-aligned.
    pub fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(value: u64) -> Self {
        PhysAddr(value)
    }
}

/// A page frame number (physical address / [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl Pfn {
    /// First byte address of the frame.
    pub fn addr(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE)
    }

    /// The frame `count` frames after this one.
    pub fn offset(self, count: u64) -> Pfn {
        Pfn(self.0 + count)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn#{}", self.0)
    }
}

impl From<u64> for Pfn {
    fn from(value: u64) -> Self {
        Pfn(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_pfn_round_trip() {
        let a = PhysAddr(3 * PAGE_SIZE + 17);
        assert_eq!(a.pfn(), Pfn(3));
        assert_eq!(a.page_offset(), 17);
        assert!(!a.is_page_aligned());
        assert_eq!(Pfn(3).addr(), PhysAddr(3 * PAGE_SIZE));
        assert!(Pfn(3).addr().is_page_aligned());
    }

    #[test]
    fn pfn_offset() {
        assert_eq!(Pfn(5).offset(3), Pfn(8));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr(0x1000).to_string(), "0x1000");
        assert_eq!(Pfn(7).to_string(), "pfn#7");
    }
}
