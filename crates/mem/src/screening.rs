//! Page-size-bit screening scan (paper section 7) — see
//! `cta-core::screening` for the full rationale. The implementation lives
//! here so the kernel can apply it at boot without a dependency cycle.

use cta_dram::{DramError, DramModule, RowId};

use crate::cta::{PtLevel, PtpLayout};
use crate::frame::PAGE_SIZE;

/// Bit position of the PS bit within a 64-bit entry.
const PS_BIT: u64 = 7;

/// Scans the PD- and PDPT-level sub-zones of `layout` (and untagged
/// sub-zones, which may host any level) for frames with a vulnerable
/// PS-bit cell in any of their 512 entry slots. Returns the page addresses
/// that must not host high-level tables.
///
/// # Errors
///
/// DRAM errors from the vulnerability scan.
pub fn screen_page_size_bit(
    module: &mut DramModule,
    layout: &PtpLayout,
) -> Result<Vec<u64>, DramError> {
    let row_bytes = module.geometry().row_bytes();
    let mut out = Vec::new();
    for (range, level) in layout.subzones() {
        let screenable = matches!(level, Some(PtLevel::Pd) | Some(PtLevel::Pdpt) | None);
        if !screenable {
            continue;
        }
        let mut page = range.start;
        while page < range.end {
            let row = RowId(page / row_bytes);
            let page_bit_base = (page % row_bytes) * 8;
            let vulnerable = module.vulnerable_bits(row)?;
            let exploitable = vulnerable.iter().any(|vb| {
                vb.bit >= page_bit_base
                    && vb.bit < page_bit_base + PAGE_SIZE * 8
                    && (vb.bit - page_bit_base) % 64 == PS_BIT
            });
            if exploitable {
                out.push(page);
            }
            page += PAGE_SIZE;
        }
    }
    Ok(out)
}
