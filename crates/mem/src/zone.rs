use std::fmt;
use std::ops::Range;

use crate::buddy::BuddyAllocator;
use crate::cta::PtLevel;
use crate::error::AllocError;
use crate::frame::Pfn;
use crate::stats::ZoneStats;

/// The kinds of physical-memory zones (Figure 6, plus the paper's new zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZoneKind {
    /// Legacy-DMA memory: first 16 MiB.
    Dma,
    /// 32-bit addressable memory: 16 MiB – 4 GiB (x86-64).
    Dma32,
    /// Directly mapped kernel memory.
    Normal,
    /// High memory (32-bit x86 only).
    HighMem,
    /// The paper's page-table-page zone at the top of physical memory.
    Ptp,
}

impl ZoneKind {
    /// Height in the fallback order: requests fall back from higher to
    /// lower zones ([`ZoneKind::Ptp`] never participates).
    pub(crate) fn height(self) -> Option<u8> {
        match self {
            ZoneKind::Dma => Some(0),
            ZoneKind::Dma32 => Some(1),
            ZoneKind::Normal => Some(2),
            ZoneKind::HighMem => Some(3),
            ZoneKind::Ptp => None,
        }
    }
}

impl fmt::Display for ZoneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ZoneKind::Dma => "ZONE_DMA",
            ZoneKind::Dma32 => "ZONE_DMA32",
            ZoneKind::Normal => "ZONE_NORMAL",
            ZoneKind::HighMem => "ZONE_HIGHMEM",
            ZoneKind::Ptp => "ZONE_PTP",
        };
        f.write_str(s)
    }
}

/// Specification of one sub-zone when constructing a [`Zone`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubZoneSpec {
    /// Frame range `[start, end)`.
    pub pfn_range: Range<u64>,
    /// Page-table level served (multi-level `ZONE_PTP` only).
    pub level: Option<PtLevel>,
    /// Reserved for trusted allocations (the two-zeros-restriction stripes).
    pub trusted_only: bool,
}

impl SubZoneSpec {
    /// An ordinary sub-zone over `pfn_range`.
    pub fn plain(pfn_range: Range<u64>) -> Self {
        SubZoneSpec { pfn_range, level: None, trusted_only: false }
    }
}

/// One contiguous sub-range of a zone with its own buddy allocator.
///
/// Ordinary zones have a single sub-zone spanning their whole range. A CTA
/// `ZONE_PTP` has one sub-zone per contiguous *true-cell* region
/// (`ZONE_TC`), skipping interleaved anti-cell rows (Figure 8). Sub-zones
/// may additionally be tagged with the page-table level they serve
/// (multi-level extension, section 7) or as trusted-only stripes
/// (section 5's two-zeros restriction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubZone {
    buddy: BuddyAllocator,
    level: Option<PtLevel>,
    trusted_only: bool,
}

impl SubZone {
    /// The page-table level this sub-zone is dedicated to, if any.
    pub fn level(&self) -> Option<PtLevel> {
        self.level
    }

    /// Whether only trusted allocations may use this sub-zone.
    pub fn trusted_only(&self) -> bool {
        self.trusted_only
    }

    /// Frame range of the sub-zone.
    pub fn pfn_range(&self) -> Range<u64> {
        self.buddy.start().0..self.buddy.end().0
    }

    /// Free frames remaining.
    pub fn free_pages(&self) -> u64 {
        self.buddy.free_pages()
    }
}

/// A physical-memory zone: a kind, a frame span, and one or more sub-zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    kind: ZoneKind,
    span: Range<u64>,
    subzones: Vec<SubZone>,
    stats: ZoneStats,
}

impl Zone {
    /// Creates an ordinary single-sub-zone zone over frames `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn contiguous(kind: ZoneKind, start: Pfn, end: Pfn) -> Self {
        Zone::from_subzones(kind, vec![SubZoneSpec::plain(start.0..end.0)])
    }

    /// Creates a zone from explicit sub-zone specs in ascending address
    /// order (used for `ZONE_PTP` and for zones with trusted stripes).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or any range is empty.
    pub fn from_subzones(kind: ZoneKind, specs: Vec<SubZoneSpec>) -> Self {
        assert!(!specs.is_empty(), "a zone needs at least one sub-zone");
        let span_start = specs.iter().map(|s| s.pfn_range.start).min().expect("nonempty");
        let span_end = specs.iter().map(|s| s.pfn_range.end).max().expect("nonempty");
        let subzones = specs
            .into_iter()
            .map(|s| SubZone {
                buddy: BuddyAllocator::new(Pfn(s.pfn_range.start), Pfn(s.pfn_range.end)),
                level: s.level,
                trusted_only: s.trusted_only,
            })
            .collect();
        Zone { kind, span: span_start..span_end, subzones, stats: ZoneStats::default() }
    }

    /// The zone kind.
    pub fn kind(&self) -> ZoneKind {
        self.kind
    }

    /// The zone's full frame span (sub-zone gaps included).
    pub fn span(&self) -> Range<u64> {
        self.span.clone()
    }

    /// The zone's sub-zones in ascending address order.
    pub fn subzones(&self) -> &[SubZone] {
        &self.subzones
    }

    /// Whether the zone manages `pfn` (i.e. some sub-zone contains it).
    pub fn manages(&self, pfn: Pfn) -> bool {
        self.subzones.iter().any(|s| s.buddy.contains(pfn))
    }

    /// Total frames managed across sub-zones.
    pub fn total_pages(&self) -> u64 {
        self.subzones.iter().map(|s| s.buddy.total_pages()).sum()
    }

    /// Free frames across sub-zones.
    pub fn free_pages(&self) -> u64 {
        self.subzones.iter().map(|s| s.buddy.free_pages()).sum()
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &ZoneStats {
        &self.stats
    }

    /// Allocates `2^order` frames, searching sub-zones in ascending address
    /// order — the paper's "search each ZONE_TC sequentially" policy.
    ///
    /// When `level` is given, only sub-zones tagged with that level are
    /// eligible. Trusted-only sub-zones are skipped unless `allow_trusted`.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when no eligible sub-zone can serve the
    /// order; [`AllocError::OrderTooLarge`] for oversized requests.
    pub fn alloc(
        &mut self,
        order: u8,
        level: Option<PtLevel>,
        allow_trusted: bool,
    ) -> Result<Pfn, AllocError> {
        if order >= crate::MAX_ORDER {
            return Err(AllocError::OrderTooLarge { order });
        }
        for sub in &mut self.subzones {
            if let Some(want) = level {
                if sub.level != Some(want) {
                    continue;
                }
            }
            if sub.trusted_only && !allow_trusted {
                continue;
            }
            match sub.buddy.alloc(order) {
                Ok(pfn) => {
                    self.stats.allocations += 1;
                    self.stats.pages_allocated += 1 << order;
                    return Ok(pfn);
                }
                Err(AllocError::OutOfMemory { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        self.stats.failures += 1;
        Err(AllocError::OutOfMemory { zone: self.kind, order })
    }

    /// Frees a block previously allocated from this zone.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownFrame`] if no sub-zone manages `pfn`; otherwise
    /// the underlying buddy errors ([`AllocError::NotAllocated`],
    /// [`AllocError::OrderMismatch`]).
    pub fn free(&mut self, pfn: Pfn, order: u8) -> Result<(), AllocError> {
        for sub in &mut self.subzones {
            if sub.buddy.contains(pfn) {
                sub.buddy.free(pfn, order)?;
                self.stats.frees += 1;
                self.stats.pages_freed += 1 << order;
                return Ok(());
            }
        }
        Err(AllocError::UnknownFrame { pfn })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_zone_basics() {
        let z = Zone::contiguous(ZoneKind::Normal, Pfn(0), Pfn(256));
        assert_eq!(z.kind(), ZoneKind::Normal);
        assert_eq!(z.total_pages(), 256);
        assert_eq!(z.free_pages(), 256);
        assert!(z.manages(Pfn(100)));
        assert!(!z.manages(Pfn(256)));
    }

    #[test]
    fn alloc_free_updates_stats() {
        let mut z = Zone::contiguous(ZoneKind::Dma, Pfn(0), Pfn(64));
        let p = z.alloc(2, None, true).unwrap();
        assert_eq!(z.stats().allocations, 1);
        assert_eq!(z.stats().pages_allocated, 4);
        z.free(p, 2).unwrap();
        assert_eq!(z.stats().frees, 1);
        assert_eq!(z.free_pages(), 64);
    }

    #[test]
    fn subzones_searched_in_address_order() {
        let mut z = Zone::from_subzones(
            ZoneKind::Ptp,
            vec![SubZoneSpec::plain(100..164), SubZoneSpec::plain(300..364)],
        );
        let p = z.alloc(0, None, true).unwrap();
        assert_eq!(p, Pfn(100));
        assert_eq!(z.span(), 100..364);
        assert!(!z.manages(Pfn(200)), "gap frames are not managed");
    }

    #[test]
    fn exhausting_first_subzone_spills_to_next() {
        let mut z = Zone::from_subzones(
            ZoneKind::Ptp,
            vec![SubZoneSpec::plain(0..4), SubZoneSpec::plain(8..12)],
        );
        let mut got = Vec::new();
        for _ in 0..8 {
            got.push(z.alloc(0, None, true).unwrap().0);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        assert!(z.alloc(0, None, true).is_err());
        assert_eq!(z.stats().failures, 1);
    }

    #[test]
    fn level_tagged_subzones_filter() {
        let mut z = Zone::from_subzones(
            ZoneKind::Ptp,
            vec![
                SubZoneSpec { pfn_range: 0..16, level: Some(PtLevel::Pt), trusted_only: false },
                SubZoneSpec { pfn_range: 16..32, level: Some(PtLevel::Pd), trusted_only: false },
            ],
        );
        let p = z.alloc(0, Some(PtLevel::Pd), true).unwrap();
        assert!(p.0 >= 16);
        let q = z.alloc(0, Some(PtLevel::Pt), true).unwrap();
        assert!(q.0 < 16);
        // No sub-zone for PML4 in this setup.
        assert!(z.alloc(0, Some(PtLevel::Pml4), true).is_err());
    }

    #[test]
    fn trusted_subzones_skipped_for_untrusted_requests() {
        let mut z = Zone::from_subzones(
            ZoneKind::Normal,
            vec![
                SubZoneSpec::plain(0..4),
                SubZoneSpec { pfn_range: 4..8, level: None, trusted_only: true },
            ],
        );
        for _ in 0..4 {
            z.alloc(0, None, false).unwrap();
        }
        assert!(z.alloc(0, None, false).is_err(), "untrusted must not reach the stripe");
        let p = z.alloc(0, None, true).unwrap();
        assert!(p.0 >= 4);
    }

    #[test]
    fn free_of_gap_frame_rejected() {
        let mut z = Zone::from_subzones(
            ZoneKind::Ptp,
            vec![SubZoneSpec::plain(0..4), SubZoneSpec::plain(8..12)],
        );
        assert!(matches!(z.free(Pfn(5), 0), Err(AllocError::UnknownFrame { .. })));
    }

    #[test]
    fn zone_kind_display_and_height() {
        assert_eq!(ZoneKind::Ptp.to_string(), "ZONE_PTP");
        assert_eq!(ZoneKind::Dma32.to_string(), "ZONE_DMA32");
        assert_eq!(ZoneKind::Ptp.height(), None);
        assert!(ZoneKind::Normal.height() > ZoneKind::Dma32.height());
    }
}
