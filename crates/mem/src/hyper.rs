//! Hypervisor support for CTA (paper section 7).
//!
//! In a virtualized deployment the *hypervisor* owns the highest true-cell
//! physical addresses as `ZONE_HYPERVISOR` and hands each guest OS a
//! disjoint slice of it to use as that guest's `ZONE_PTP`. All regular
//! (guest data) allocations are served below the hypervisor zone. The
//! monotonicity argument then holds both *within* and *across* VMs: any
//! corrupted PTE pointer — in any guest — can only decrease, and every
//! page-table page of every guest lives above the shared mark, so no PTE
//! can be made to reference a page table of its own or of any other VM.

use std::fmt;
use std::ops::Range;

use cta_dram::CellTypeMap;

use crate::cta::{PtpLayout, PtpSpec};
use crate::error::AllocError;
use crate::frame::PAGE_SIZE;

/// A guest VM's request for page-table capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestSpec {
    /// Guest name (for reports).
    pub name: String,
    /// True-cell bytes of `ZONE_PTP` the guest needs (power of two).
    pub ptp_bytes: u64,
}

impl GuestSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, ptp_bytes: u64) -> Self {
        GuestSpec { name: name.into(), ptp_bytes }
    }
}

/// One guest's assignment out of `ZONE_HYPERVISOR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestPlan {
    /// Guest name.
    pub name: String,
    /// The guest's `ZONE_PTP` layout: its true-cell slice, with the
    /// *hypervisor-wide* low water mark (guest data must stay below the
    /// whole hypervisor zone, not merely below the guest's own slice).
    pub layout: PtpLayout,
}

/// The hypervisor's partition of the top of host physical memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypervisorPlan {
    host_layout: PtpLayout,
    guests: Vec<GuestPlan>,
}

impl HypervisorPlan {
    /// Builds the plan: reserve enough top-of-memory true-cell capacity for
    /// every guest, then carve disjoint slices in guest order (first guest
    /// lowest).
    ///
    /// # Errors
    ///
    /// [`AllocError::InsufficientTrueCells`] if the host lacks capacity.
    ///
    /// # Panics
    ///
    /// Panics if a guest's `ptp_bytes` is not a positive power of two or if
    /// `guests` is empty — configuration errors.
    pub fn build(
        map: &CellTypeMap,
        total_bytes: u64,
        guests: &[GuestSpec],
    ) -> Result<Self, AllocError> {
        assert!(!guests.is_empty(), "a hypervisor plan needs at least one guest");
        for g in guests {
            assert!(
                g.ptp_bytes.is_power_of_two() && g.ptp_bytes >= PAGE_SIZE,
                "guest {} ptp_bytes must be a power of two",
                g.name
            );
        }
        let needed: u64 = guests.iter().map(|g| g.ptp_bytes).sum();
        let zone_bytes = needed.next_power_of_two();
        let host_layout = PtpLayout::build(
            map,
            total_bytes,
            &PtpSpec { ptp_bytes: zone_bytes, multi_level: false, restrict_two_zeros: false },
        )?;
        // Carve slices from the host zone's true-cell ranges, ascending.
        let mut cursor: Vec<Range<u64>> =
            host_layout.subzones().iter().map(|(r, _)| r.clone()).collect();
        cursor.reverse(); // pop from the lowest range first
        let mut plans = Vec::with_capacity(guests.len());
        for guest in guests {
            let mut remaining = guest.ptp_bytes;
            let mut slice = Vec::new();
            while remaining > 0 {
                let Some(mut range) = cursor.pop() else {
                    return Err(AllocError::InsufficientTrueCells {
                        requested: needed,
                        available: needed - remaining,
                    });
                };
                let take = remaining.min(range.end - range.start);
                slice.push(range.start..range.start + take);
                remaining -= take;
                range.start += take;
                if range.start < range.end {
                    cursor.push(range);
                }
            }
            plans.push(GuestPlan {
                name: guest.name.clone(),
                layout: PtpLayout::manual(
                    slice,
                    host_layout.low_water_mark(),
                    total_bytes,
                    guest.ptp_bytes,
                ),
            });
        }
        Ok(HypervisorPlan { host_layout, guests: plans })
    }

    /// The whole `ZONE_HYPERVISOR` layout.
    pub fn host_layout(&self) -> &PtpLayout {
        &self.host_layout
    }

    /// The base of `ZONE_HYPERVISOR` — the system-wide low water mark every
    /// guest's data stays below.
    pub fn zone_base(&self) -> u64 {
        self.host_layout.low_water_mark()
    }

    /// Per-guest assignments, in the order given to [`build`](Self::build).
    pub fn guests(&self) -> &[GuestPlan] {
        &self.guests
    }

    /// Checks the plan's structural invariants; returns human-readable
    /// violations (empty = sound).
    pub fn check(&self, map: &CellTypeMap) -> Vec<String> {
        let mut problems = Vec::new();
        let base = self.zone_base();
        let mut all: Vec<(usize, Range<u64>)> = Vec::new();
        for (i, guest) in self.guests.iter().enumerate() {
            if guest.layout.low_water_mark() != base {
                problems.push(format!("{}: mark differs from hypervisor base", guest.name));
            }
            for (range, _) in guest.layout.subzones() {
                if range.start < base {
                    problems.push(format!("{}: slice below ZONE_HYPERVISOR", guest.name));
                }
                let row_bytes = map.row_bytes();
                let mut row = range.start / row_bytes;
                while row * row_bytes < range.end {
                    if map.cell_type(cta_dram::RowId(row)) != Some(cta_dram::CellType::True) {
                        problems.push(format!("{}: slice row {row} is not true-cells", guest.name));
                    }
                    row += 1;
                }
                all.push((i, range.clone()));
            }
        }
        for (i, a) in &all {
            for (j, b) in &all {
                if i < j && a.start < b.end && b.start < a.end {
                    problems.push(format!(
                        "guests {} and {} overlap at {:#x}",
                        self.guests[*i].name,
                        self.guests[*j].name,
                        a.start.max(b.start)
                    ));
                }
            }
        }
        problems
    }
}

impl fmt::Display for HypervisorPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ZONE_HYPERVISOR base {:#x}", self.zone_base())?;
        for guest in &self.guests {
            for (range, _) in guest.layout.subzones() {
                writeln!(f, "  {}: {:#x}..{:#x}", guest.name, range.start, range.end)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::{AddressMapping, CellLayout, CellType, DramGeometry};

    fn map() -> CellTypeMap {
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        CellTypeMap::from_layout(
            &g,
            CellLayout::Alternating { period_rows: 64, first: CellType::True },
        )
    }

    fn guests() -> Vec<GuestSpec> {
        vec![
            GuestSpec::new("guest-a", 1 << 20),
            GuestSpec::new("guest-b", 2 << 20),
            GuestSpec::new("guest-c", 1 << 20),
        ]
    }

    #[test]
    fn plan_is_sound() {
        let map = map();
        let plan = HypervisorPlan::build(&map, 64 << 20, &guests()).unwrap();
        assert!(plan.check(&map).is_empty(), "{:?}", plan.check(&map));
        assert_eq!(plan.guests().len(), 3);
        // Capacity per guest is exactly as requested.
        for (spec, got) in guests().iter().zip(plan.guests()) {
            let total: u64 = got.layout.subzones().iter().map(|(r, _)| r.end - r.start).sum();
            assert_eq!(total, spec.ptp_bytes, "{}", spec.name);
        }
    }

    #[test]
    fn guests_are_ordered_and_disjoint() {
        let plan = HypervisorPlan::build(&map(), 64 << 20, &guests()).unwrap();
        let mut last_end = 0u64;
        for guest in plan.guests() {
            for (range, _) in guest.layout.subzones() {
                assert!(range.start >= last_end);
                last_end = range.end;
            }
        }
    }

    #[test]
    fn all_guest_marks_equal_zone_base() {
        let plan = HypervisorPlan::build(&map(), 64 << 20, &guests()).unwrap();
        for guest in plan.guests() {
            assert_eq!(guest.layout.low_water_mark(), plan.zone_base());
        }
    }

    #[test]
    fn insufficient_capacity_errors() {
        // An all-anti module has no true cells to host ZONE_HYPERVISOR.
        let g = DramGeometry::new(64 * 1024, 1024, 1, AddressMapping::RowLinear);
        let anti = CellTypeMap::from_layout(&g, CellLayout::AllAnti);
        let guests = vec![GuestSpec::new("guest", 1 << 20)];
        assert!(matches!(
            HypervisorPlan::build(&anti, 64 << 20, &guests),
            Err(AllocError::InsufficientTrueCells { .. })
        ));
    }

    #[test]
    fn check_catches_tampered_plans() {
        let map = map();
        let mut plan = HypervisorPlan::build(&map, 64 << 20, &guests()).unwrap();
        // Tamper: move guest-a's slice below the base.
        let bad = PtpLayout::manual(vec![0..(1 << 20)], plan.zone_base(), 64 << 20, 1 << 20);
        plan.guests[0].layout = bad;
        assert!(!plan.check(&map).is_empty());
    }

    #[test]
    fn display_mentions_every_guest() {
        let plan = HypervisorPlan::build(&map(), 64 << 20, &guests()).unwrap();
        let s = plan.to_string();
        for g in guests() {
            assert!(s.contains(&g.name));
        }
    }
}
