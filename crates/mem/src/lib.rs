//! Zoned buddy allocator substrate with Cell-Type-Aware (CTA) allocation.
//!
//! This crate reproduces the part of the Linux memory-management stack the
//! paper modifies (section 6.1): a **zoned binary buddy allocator** with GFP
//! flags and zonelist fallback, extended with
//!
//! - a new [`ZoneKind::Ptp`] zone at the **top** of physical memory that
//!   serves page-table pages only (Rule 2) and never falls back to other
//!   zones (Rule 1);
//! - [`PtpLayout`]: construction of `ZONE_PTP` from a profiled
//!   [`CellTypeMap`](cta_dram::CellTypeMap), restricting it to **true-cell
//!   sub-zones** (`ZONE_TC`, Figure 8) and reserving interleaved anti-cell
//!   rows (the section 6.2 capacity-loss accounting);
//! - multi-level PTP zones for the multiple-page-size extension
//!   (section 7), where each page-table level gets its own sub-zone and
//!   higher levels sit at higher physical addresses.
//!
//! # Example
//!
//! ```
//! use cta_mem::{GfpFlags, MemoryMap, ZonedAllocator};
//!
//! # fn main() -> Result<(), cta_mem::AllocError> {
//! // 64 MiB of physical memory, no CTA: the classic x86-64 zone layout.
//! let map = MemoryMap::x86_64(64 << 20);
//! let mut alloc = ZonedAllocator::new(map);
//! let page = alloc.alloc_pages(GfpFlags::KERNEL, 0)?;
//! alloc.free_pages(page, 0)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod buddy;
mod cta;
mod error;
mod frame;
mod gfp;
mod hyper;
mod screening;
mod stats;
mod zone;

pub use allocator::{MemoryMap, ZonedAllocator};
pub use buddy::{BuddyAllocator, MAX_ORDER};
pub use cta::{PtLevel, PtpLayout, PtpSpec};
pub use error::AllocError;
pub use frame::{Pfn, PhysAddr, PAGE_SIZE};
pub use gfp::{GfpFlags, ZonePreference};
pub use hyper::{GuestPlan, GuestSpec, HypervisorPlan};
pub use screening::screen_page_size_bit;
pub use stats::{AllocStats, ZoneStats};
pub use zone::{SubZone, SubZoneSpec, Zone, ZoneKind};
