use std::fmt;

use cta_telemetry::{Group, StatSource};

/// Per-zone allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneStats {
    /// Successful block allocations.
    pub allocations: u64,
    /// Frames handed out (sum of `2^order`).
    pub pages_allocated: u64,
    /// Block frees.
    pub frees: u64,
    /// Frames returned.
    pub pages_freed: u64,
    /// Allocation attempts that found no block in this zone.
    pub failures: u64,
}

impl StatSource for ZoneStats {
    fn group(&self) -> &'static str {
        // Callers normally record per-zone via `Counters::record_as` with
        // a `zone:<name>` group; this is the anonymous fallback.
        "zone"
    }

    fn record(&self, g: &mut Group) {
        g.add_u64("allocations", self.allocations);
        g.add_u64("pages_allocated", self.pages_allocated);
        g.add_u64("frees", self.frees);
        g.add_u64("pages_freed", self.pages_freed);
        g.add_u64("failures", self.failures);
    }
}

impl fmt::Display for ZoneStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} pages={} frees={} failures={}",
            self.allocations, self.pages_allocated, self.frees, self.failures
        )
    }
}

/// System-wide allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Requests served by the first-choice zone.
    pub primary_hits: u64,
    /// Requests served by a fallback zone further down the zonelist.
    pub fallbacks: u64,
    /// Requests that failed in every eligible zone.
    pub failures: u64,
    /// `__GFP_PTP` requests served.
    pub ptp_allocations: u64,
    /// `__GFP_PTP` requests that failed (no fallback is permitted).
    pub ptp_failures: u64,
}

impl StatSource for AllocStats {
    fn group(&self) -> &'static str {
        "alloc"
    }

    fn record(&self, g: &mut Group) {
        g.add_u64("primary_hits", self.primary_hits);
        g.add_u64("fallbacks", self.fallbacks);
        g.add_u64("failures", self.failures);
        g.add_u64("ptp_allocations", self.ptp_allocations);
        g.add_u64("ptp_failures", self.ptp_failures);
    }
}

impl fmt::Display for AllocStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "primary={} fallback={} failed={} ptp={} ptp_failed={}",
            self.primary_hits,
            self.fallbacks,
            self.failures,
            self.ptp_allocations,
            self.ptp_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        assert!(!ZoneStats::default().to_string().is_empty());
        assert!(!AllocStats::default().to_string().is_empty());
    }
}
