//! Hamming-weight error detection across cell polarities (section 8).
//!
//! Store a data block in **true-cells** and its hamming weight in
//! **anti-cells**. Under charge-leak corruption the data's true weight can
//! only *decrease* while the stored weight value can only *increase* — the
//! two can never drift into a consistent lie except through the rare
//! reverse-direction flips, so `popcount(data) != stored_weight` detects
//! corruption of either side with high probability. Cost: one `POPCNT`
//! per check and `log2(n)` redundant bits.

use cta_dram::{CellType, DramError, DramModule, RowId};

/// Hamming weight of a byte slice, computed eight bytes per `POPCNT`.
///
/// The check's hot loop — encode once, check often — used to popcount byte
/// by byte. Loading `u64` words and counting those matches the wordwise
/// bitplane engine's accounting in `cta-dram` and lets the compiler keep the
/// whole reduction in registers. The ragged tail (len not a multiple of 8)
/// is folded in bytewise; weights agree with the scalar sum for every
/// length.
#[must_use]
pub fn hamming_weight(bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    let mut weight: u64 = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        weight += u64::from(word.count_ones());
    }
    for b in chunks.remainder() {
        weight += u64::from(b.count_ones());
    }
    weight
}

/// Verdict of a consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Weight matches: data is (very probably) intact.
    Clean,
    /// Mismatch: corruption detected in the data or the weight.
    ErrorDetected {
        /// `popcount(data)` as currently read.
        observed_weight: u64,
        /// The stored (anti-cell) weight value.
        stored_weight: u64,
    },
}

/// A data block protected by the popcount code.
#[derive(Debug, Clone, Copy)]
pub struct PopcountCode {
    data_addr: u64,
    data_len: usize,
    weight_addr: u64,
}

impl PopcountCode {
    /// Encodes `data` at the start of `data_row` (must be true-cells) and
    /// its weight at the start of `weight_row` (must be anti-cells).
    ///
    /// # Errors
    ///
    /// [`DramError`] on bounds problems, or a
    /// [`DramError::RemapTypeMismatch`]-style polarity panic is *not* used —
    /// wrong polarities are a caller bug and panic.
    ///
    /// # Panics
    ///
    /// Panics if `data_row` is not true-cells or `weight_row` is not
    /// anti-cells — the scheme's guarantees depend on the polarities.
    pub fn encode(
        module: &mut DramModule,
        data_row: RowId,
        weight_row: RowId,
        data: &[u8],
    ) -> Result<Self, DramError> {
        assert_eq!(
            module.cell_type_of_row(data_row)?,
            CellType::True,
            "data must live in true-cells"
        );
        assert_eq!(
            module.cell_type_of_row(weight_row)?,
            CellType::Anti,
            "weight must live in anti-cells"
        );
        let data_addr = module.geometry().addr_of_row(data_row)?;
        let weight_addr = module.geometry().addr_of_row(weight_row)?;
        module.write(data_addr, data)?;
        let weight = hamming_weight(data);
        module.write_u64(weight_addr, weight)?;
        Ok(PopcountCode { data_addr, data_len: data.len(), weight_addr })
    }

    /// Reads the current data block.
    ///
    /// # Errors
    ///
    /// DRAM bounds errors.
    pub fn data(&self, module: &mut DramModule) -> Result<Vec<u8>, DramError> {
        module.read(self.data_addr, self.data_len)
    }

    /// Runs the check: recompute the weight, compare to the stored one.
    ///
    /// # Errors
    ///
    /// DRAM bounds errors.
    pub fn check(&self, module: &mut DramModule) -> Result<Verdict, DramError> {
        let data = module.read(self.data_addr, self.data_len)?;
        let observed = hamming_weight(&data);
        let stored = module.read_u64(self.weight_addr)?;
        if observed == stored {
            Ok(Verdict::Clean)
        } else {
            Ok(Verdict::ErrorDetected { observed_weight: observed, stored_weight: stored })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::{CellLayout, CellType, DisturbanceParams, DramConfig};

    /// small_test layout alternates every 8 rows starting true: rows 0–7
    /// true, 8–15 anti.
    fn module(pf: f64) -> DramModule {
        let cfg = DramConfig::small_test().with_disturbance(DisturbanceParams {
            pf,
            reverse_rate: 0.0,
            ..DisturbanceParams::default()
        });
        DramModule::new(cfg)
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 37 % 251) as u8).collect()
    }

    #[test]
    fn clean_round_trip() {
        let mut m = module(0.02);
        let data = payload(1024);
        let code = PopcountCode::encode(&mut m, RowId(2), RowId(10), &data).unwrap();
        assert_eq!(code.check(&mut m).unwrap(), Verdict::Clean);
        assert_eq!(code.data(&mut m).unwrap(), data);
    }

    #[test]
    fn hammering_data_row_is_detected() {
        let mut m = module(0.02);
        let data = payload(4096);
        let code = PopcountCode::encode(&mut m, RowId(2), RowId(10), &data).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        match code.check(&mut m).unwrap() {
            Verdict::ErrorDetected { observed_weight, stored_weight } => {
                assert!(observed_weight < stored_weight, "true-cell data can only lose weight");
            }
            Verdict::Clean => panic!("pf=2% over 4 KiB must flip something"),
        }
    }

    #[test]
    fn hammering_weight_row_is_detected() {
        let mut m = module(0.05);
        let data = payload(4096);
        let code = PopcountCode::encode(&mut m, RowId(2), RowId(10), &data).unwrap();
        // Hammer the anti-cell weight row. The stored weight (a small
        // number, mostly 0-bits) can only grow.
        m.hammer_double_sided(RowId(10)).unwrap();
        match code.check(&mut m).unwrap() {
            Verdict::ErrorDetected { observed_weight, stored_weight } => {
                assert!(stored_weight > observed_weight, "anti-cell weight can only grow");
            }
            // The weight u64 is only 64 bits of the row; flips may miss it.
            Verdict::Clean => {}
        }
    }

    #[test]
    #[should_panic(expected = "true-cells")]
    fn wrong_data_polarity_panics() {
        let mut m = module(0.02);
        let _ = PopcountCode::encode(&mut m, RowId(10), RowId(11), &payload(64));
    }

    #[test]
    #[should_panic(expected = "anti-cells")]
    fn wrong_weight_polarity_panics() {
        let mut m = module(0.02);
        let _ = PopcountCode::encode(&mut m, RowId(2), RowId(3), &payload(64));
    }

    #[test]
    fn detection_rate_is_high_across_modules() {
        // Fault-injection sweep: measure the detection rate over many
        // modules; misses require exactly compensating flips, which the
        // directional argument makes (nearly) impossible with
        // reverse_rate = 0.
        let mut detected = 0;
        let mut corrupted = 0;
        for seed in 0..20u64 {
            let cfg =
                DramConfig::small_test().with_seed(seed).with_disturbance(DisturbanceParams {
                    pf: 0.01,
                    reverse_rate: 0.0,
                    ..DisturbanceParams::default()
                });
            let mut m = DramModule::new(cfg);
            let data = payload(4096);
            let code = PopcountCode::encode(&mut m, RowId(2), RowId(10), &data).unwrap();
            m.hammer_double_sided(RowId(2)).unwrap();
            let was_corrupted = code.data(&mut m).unwrap() != data;
            if was_corrupted {
                corrupted += 1;
                if code.check(&mut m).unwrap() != Verdict::Clean {
                    detected += 1;
                }
            }
        }
        assert!(corrupted > 10, "most modules should corrupt, got {corrupted}");
        assert_eq!(detected, corrupted, "every corruption must be detected");
    }

    #[test]
    fn wordwise_weight_matches_bytewise_for_every_tail_length() {
        for len in 0..=67usize {
            let data = payload(len);
            let bytewise: u64 = data.iter().map(|b| u64::from(b.count_ones())).sum();
            assert_eq!(hamming_weight(&data), bytewise, "len={len}");
        }
        assert_eq!(hamming_weight(&[]), 0);
        assert_eq!(hamming_weight(&[0xFF; 16]), 128);
    }

    #[test]
    fn layout_sanity() {
        let m = DramModule::new(DramConfig::small_test());
        assert_eq!(m.cell_type_of_row(RowId(2)).unwrap(), CellType::True);
        assert_eq!(m.cell_type_of_row(RowId(10)).unwrap(), CellType::Anti);
        let _ = CellLayout::alternating_512();
    }
}
