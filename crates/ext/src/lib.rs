//! Broader applications of cell-type monotonicity (paper section 8).
//!
//! Beyond page tables, the monotonicity property protects any data whose
//! *dangerous* corruption direction is known:
//!
//! - [`permvec`] — permission vectors placed in true-cells can lose rights
//!   (availability loss) but essentially never gain them (confidentiality
//!   stays intact);
//! - [`coldboot`] — long-retention canary cells detect DRAM remanence at
//!   boot, defeating coldboot key-recovery attacks;
//! - [`popcount`] — a one-instruction error-detection code: data in
//!   true-cells (weight can only drop), its hamming weight in anti-cells
//!   (stored weight can only rise), so corruption of either side produces a
//!   detectable mismatch with high probability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anvil;
pub mod coldboot;
pub mod permvec;
pub mod popcount;

pub use anvil::{AnvilAlarm, AnvilConfig, AnvilDetector};
pub use coldboot::{BootDecision, ColdbootGuard};
pub use permvec::{Permission, PermissionStore, PermissionVector};
pub use popcount::{hamming_weight, PopcountCode, Verdict};
