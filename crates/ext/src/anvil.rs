//! An ANVIL-style RowHammer activity detector (Aweke et al., ASPLOS 2016).
//!
//! Section 5 of the CTA paper proposes *coupling* CTA with an anomaly
//! detector for the pessimistic technology-scaling scenario: CTA slows the
//! attack from seconds to days, which lets a sampling detector run at
//! negligible overhead and still catch the attacker mid-campaign.
//!
//! The real ANVIL samples LLC-miss performance counters; our simulator
//! equivalent samples per-row activation counts within the current refresh
//! window ([`DramModule::window_activations`]) and, like ANVIL, reacts by
//! refreshing the suspected aggressor's victim rows — resetting the
//! hammer's progress before the disturbance threshold is crossed.
//!
//! This module is the *polled* form: the caller decides when
//! [`AnvilDetector::sample_and_mitigate`] runs. The hook-native form is
//! [`cta_dram::AnvilSamplerDefense`] (installed via
//! `cta_core::DefenseSpec::Anvil`), where the DRAM module itself consults
//! the sampler on every activation batch — that is what `exp-anvil` and
//! `exp-matrix` run. Same thresholds, same mitigation; the hook variant
//! samples the activation *stream* instead of a point-in-time top-N scan,
//! and inherits the stream's burst structure: a single batch larger than
//! the hammer threshold lands before the refresh does, which the
//! `exp-matrix` hammer column makes visible.

use cta_dram::{DramError, DramModule, RowId};

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnvilConfig {
    /// Rows whose within-window activation count reaches this value are
    /// flagged. Must sit below the module's hammer threshold for the
    /// mitigation to be preemptive.
    pub activation_threshold: u64,
    /// How many top rows each sample inspects.
    pub sample_width: usize,
}

impl Default for AnvilConfig {
    fn default() -> Self {
        AnvilConfig { activation_threshold: 16 * 1024, sample_width: 8 }
    }
}

/// One detection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnvilAlarm {
    /// The suspected aggressor row.
    pub row: RowId,
    /// Its activation count at sample time.
    pub activations: u64,
    /// Simulated time of the sample.
    pub time_ns: u64,
}

/// The sampling detector.
#[derive(Debug, Clone, Default)]
pub struct AnvilDetector {
    config: AnvilConfig,
    alarms: Vec<AnvilAlarm>,
    samples: u64,
}

impl AnvilDetector {
    /// Creates a detector.
    pub fn new(config: AnvilConfig) -> Self {
        AnvilDetector { config, alarms: Vec::new(), samples: 0 }
    }

    /// The configuration in force.
    pub fn config(&self) -> AnvilConfig {
        self.config
    }

    /// All alarms raised so far.
    pub fn alarms(&self) -> &[AnvilAlarm] {
        &self.alarms
    }

    /// Samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Takes one sample of the module's hottest rows, recording alarms for
    /// rows over threshold. Returns the rows flagged by *this* sample.
    pub fn sample(&mut self, module: &DramModule) -> Vec<AnvilAlarm> {
        self.samples += 1;
        let mut flagged = Vec::new();
        for (row, activations) in module.hottest_rows(self.config.sample_width) {
            if activations >= self.config.activation_threshold {
                let alarm = AnvilAlarm { row, activations, time_ns: module.now_ns() };
                self.alarms.push(alarm);
                flagged.push(alarm);
            }
        }
        flagged
    }

    /// Samples and mitigates: suspected aggressors get their victim rows
    /// refreshed and their hammer progress reset.
    ///
    /// # Errors
    ///
    /// DRAM errors from the mitigation path.
    pub fn sample_and_mitigate(
        &mut self,
        module: &mut DramModule,
    ) -> Result<Vec<AnvilAlarm>, DramError> {
        let flagged = self.sample(module);
        for alarm in &flagged {
            module.refresh_neighbors_of(alarm.row)?;
        }
        Ok(flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::{DisturbanceParams, DramConfig};

    fn module() -> DramModule {
        DramModule::new(
            DramConfig::small_test()
                .with_disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() }),
        )
    }

    #[test]
    fn detector_flags_a_hammer_burst() {
        let mut m = module();
        let mut detector = AnvilDetector::new(AnvilConfig::default());
        // Partial burst below the disturbance threshold but over ANVIL's.
        m.hammer(RowId(5), 20_000).unwrap();
        let flagged = detector.sample(&m);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].row, RowId(5));
        assert!(flagged[0].activations >= 20_000);
    }

    #[test]
    fn benign_traffic_raises_no_alarm() {
        let mut m = module();
        let mut detector = AnvilDetector::new(AnvilConfig::default());
        // Ordinary accesses across many rows.
        for i in 0..64u64 {
            m.write_u64(i * 4096, i).unwrap();
        }
        assert!(detector.sample(&m).is_empty());
        assert_eq!(detector.samples(), 1);
    }

    #[test]
    fn preemptive_mitigation_prevents_all_flips() {
        let mut m = module();
        m.fill(2 * 4096, 4096, 0xFF).unwrap(); // victim content in row 2
        let mut detector =
            AnvilDetector::new(AnvilConfig { activation_threshold: 16 * 1024, sample_width: 8 });
        let threshold = m.config().disturbance.hammer_threshold;
        // The attacker hammers in bursts; the detector samples between
        // bursts (modeling its periodic interrupt).
        for _ in 0..20 {
            m.hammer(RowId(1), threshold / 8).unwrap();
            m.hammer(RowId(3), threshold / 8).unwrap();
            detector.sample_and_mitigate(&mut m).unwrap();
        }
        assert!(detector.alarms().len() >= 2, "attack must be noticed");
        assert_eq!(m.stats().total_flips(), 0, "mitigation must preempt disturbance");
    }

    #[test]
    fn without_mitigation_the_same_attack_flips() {
        let mut m = module();
        m.fill(2 * 4096, 4096, 0xFF).unwrap();
        let threshold = m.config().disturbance.hammer_threshold;
        for _ in 0..20 {
            m.hammer(RowId(1), threshold / 8).unwrap();
            m.hammer(RowId(3), threshold / 8).unwrap();
        }
        assert!(m.stats().total_flips() > 0);
    }

    #[test]
    fn sampling_too_slowly_misses_the_window() {
        // A detector that samples after the burst finished sees the alarm
        // but cannot preempt — flips already happened. (The paper's point:
        // CTA buys the detector time.)
        let mut m = module();
        m.fill(2 * 4096, 4096, 0xFF).unwrap();
        let mut detector = AnvilDetector::new(AnvilConfig::default());
        m.hammer_double_sided(RowId(2)).unwrap();
        let flagged = detector.sample_and_mitigate(&mut m).unwrap();
        assert!(!flagged.is_empty());
        assert!(m.stats().total_flips() > 0);
    }
}
