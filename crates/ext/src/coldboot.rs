//! Coldboot-attack detection through retention canaries.
//!
//! Coldboot attacks exploit DRAM remanence: power-cycle a (possibly
//! chilled) machine fast enough and secrets survive in the cells. The
//! defense arms **long-retention canary cells** (found by retention
//! profiling, section 2.2 machinery) with their charged values during
//! operation. At boot, the loader inspects the canaries:
//!
//! - canaries fully **discharged** (true-cells read 0, anti-cells read 1):
//!   the off-time exceeded even the longest-retention cells, so every
//!   ordinary cell's data is certainly gone → safe to proceed;
//! - any canary still **charged**: the off-time was short enough that
//!   ordinary cells may still hold secrets → halt (or scrub) to deny the
//!   attacker a readable image.
//!
//! The paper's prose states the polarity of the check the other way
//! around; we implement the direction that makes the scheme sound (proceed
//! only on full decay) and note the substitution in EXPERIMENTS.md.

use cta_dram::{profile_retention, CellType, DramError, DramModule, RetentionCanary};

/// Outcome of the boot-time canary check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootDecision {
    /// All canaries decayed: memory holds no remanent data; boot normally.
    Proceed,
    /// Some canaries still charged: possible coldboot in progress — halt.
    Halt {
        /// Number of canaries still holding charge.
        charged_canaries: usize,
    },
}

/// The canary set and its check logic.
#[derive(Debug, Clone)]
pub struct ColdbootGuard {
    canaries: Vec<RetentionCanary>,
}

impl ColdbootGuard {
    /// Profiles rows `rows` for long-retention cells and installs them as
    /// canaries. `probe_ns` must exceed ordinary retention (the profiler
    /// default works); the discovered cells are exactly those that outlive
    /// it.
    ///
    /// # Errors
    ///
    /// Profiling (DRAM) errors, or no canaries found in the range.
    pub fn install(
        module: &mut DramModule,
        rows: std::ops::Range<u64>,
        probe_ns: u64,
    ) -> Result<Self, DramError> {
        let profile = profile_retention(module, rows, probe_ns)?;
        let mut guard = ColdbootGuard { canaries: profile.long_cells };
        guard.arm(module)?;
        Ok(guard)
    }

    /// The canary cells.
    pub fn canaries(&self) -> &[RetentionCanary] {
        &self.canaries
    }

    /// Writes every canary's charged value (true-cells: 1, anti-cells: 0).
    /// Run periodically during operation and at orderly shutdown.
    ///
    /// # Errors
    ///
    /// DRAM errors.
    pub fn arm(&mut self, module: &mut DramModule) -> Result<(), DramError> {
        for canary in &self.canaries {
            let addr = module.geometry().addr_of_row(canary.row)? + canary.bit / 8;
            let mut byte = module.read(addr, 1)?[0];
            let mask = 1u8 << (canary.bit % 8);
            match canary.cell_type {
                CellType::True => byte |= mask,
                CellType::Anti => byte &= !mask,
            }
            module.write(addr, &[byte])?;
        }
        Ok(())
    }

    /// The boot-time check: count canaries still charged and decide.
    ///
    /// # Errors
    ///
    /// DRAM errors.
    pub fn check(&self, module: &mut DramModule) -> Result<BootDecision, DramError> {
        let mut charged = 0usize;
        for canary in &self.canaries {
            let addr = module.geometry().addr_of_row(canary.row)? + canary.bit / 8;
            let byte = module.read(addr, 1)?[0];
            let bit = byte >> (canary.bit % 8) & 1 == 1;
            let charged_value = !canary.cell_type.discharged_value();
            if bit == charged_value {
                charged += 1;
            }
        }
        if charged == 0 {
            Ok(BootDecision::Proceed)
        } else {
            Ok(BootDecision::Halt { charged_canaries: charged })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::DramConfig;

    fn setup() -> (DramModule, ColdbootGuard) {
        let mut m = DramModule::new(DramConfig::small_test());
        let probe = m.config().retention.max_ns * 2;
        let guard = ColdbootGuard::install(&mut m, 0..32, probe).unwrap();
        assert!(!guard.canaries().is_empty(), "test geometry should yield canaries");
        (m, guard)
    }

    #[test]
    fn quick_power_cycle_is_detected() {
        let (mut m, guard) = setup();
        // Adversary yanks power for a few seconds only.
        m.power_off(m.config().retention.min_ns / 2);
        match guard.check(&mut m).unwrap() {
            BootDecision::Halt { charged_canaries } => {
                assert_eq!(charged_canaries, guard.canaries().len(), "all canaries survive")
            }
            BootDecision::Proceed => panic!("coldboot window not detected"),
        }
    }

    #[test]
    fn chilled_coldboot_is_still_detected() {
        let (mut m, guard) = setup();
        // Longer outage that kills ordinary cells but not long canaries.
        m.power_off(m.config().retention.max_ns * 2);
        assert!(matches!(guard.check(&mut m).unwrap(), BootDecision::Halt { .. }));
    }

    #[test]
    fn chilled_coldboot_with_cooling_is_still_detected() {
        // The attacker chills the DIMM to stretch remanence — exactly the
        // case the guard must catch: data survives longer, and so do the
        // canaries, so the check still halts.
        let (mut m, guard) = setup();
        m.write(40 * 4096, b"disk-encryption-key!").unwrap();
        // An outage that would decay everything at ambient...
        let outage = m.config().retention.long_max_ns + 1;
        // ...but chilled 1000x, even ordinary cells survive.
        m.power_off_at_temperature(outage, 1000.0);
        assert!(matches!(guard.check(&mut m).unwrap(), BootDecision::Halt { .. }));
        assert_eq!(m.read(40 * 4096, 20).unwrap(), b"disk-encryption-key!");
    }

    #[test]
    fn long_outage_boots_normally() {
        let (mut m, guard) = setup();
        m.power_off(m.config().retention.long_max_ns + 1);
        assert_eq!(guard.check(&mut m).unwrap(), BootDecision::Proceed);
    }

    #[test]
    fn rearming_resets_the_window() {
        let (mut m, mut guard) = setup();
        m.power_off(m.config().retention.long_max_ns + 1);
        assert_eq!(guard.check(&mut m).unwrap(), BootDecision::Proceed);
        // System boots, re-arms; an immediate coldboot is detected again.
        guard.arm(&mut m).unwrap();
        m.power_off(m.config().retention.min_ns / 2);
        assert!(matches!(guard.check(&mut m).unwrap(), BootDecision::Halt { .. }));
    }

    #[test]
    fn ordinary_data_is_gone_whenever_boot_proceeds() {
        // The guard's soundness claim: Proceed ⇒ remanence-free.
        let (mut m, guard) = setup();
        // Plant a "secret" in an ordinary row outside the canary range.
        m.write(40 * 4096, b"disk-encryption-key!").unwrap();
        m.power_off(m.config().retention.long_max_ns + 1);
        assert_eq!(guard.check(&mut m).unwrap(), BootDecision::Proceed);
        let leaked = m.read(40 * 4096, 20).unwrap();
        assert_ne!(&leaked, b"disk-encryption-key!", "secret must have decayed");
    }
}
