//! Permission vectors in true-cells.
//!
//! Security-critical bit vectors (Unix `rwx` bits, SELinux access vectors)
//! encode "allowed" as `1`. A RowHammer flip that turns *denied into
//! allowed* violates confidentiality; the reverse merely denies a
//! legitimate user. Storing such vectors in true-cells confines flips to
//! the safe direction.

use cta_dram::{CellType, DramError, DramModule, RowId};

/// One subject's permissions over one object: the classic `rwx` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Permission {
    /// Read allowed.
    pub read: bool,
    /// Write allowed.
    pub write: bool,
    /// Execute allowed.
    pub execute: bool,
}

impl Permission {
    /// Encodes as the low three bits (`r=4, w=2, x=1`, Unix style).
    pub fn to_bits(self) -> u8 {
        (self.read as u8) << 2 | (self.write as u8) << 1 | self.execute as u8
    }

    /// Decodes from the low three bits.
    pub fn from_bits(bits: u8) -> Self {
        Permission { read: bits & 4 != 0, write: bits & 2 != 0, execute: bits & 1 != 0 }
    }

    /// Whether `self` grants anything that `other` does not — the
    /// confidentiality-violation test (a corruption of `other` into `self`
    /// *escalated* rights).
    pub fn escalated_from(self, other: Permission) -> bool {
        self.to_bits() & !other.to_bits() != 0
    }
}

/// A table of permission vectors stored in a chosen row of simulated DRAM.
///
/// The experiment in `exp-ext` stores identical tables in a true-cell and
/// an anti-cell row, hammers both, and counts escalations: the true-cell
/// table shows (essentially) none, the anti-cell table shows many.
#[derive(Debug)]
pub struct PermissionStore {
    base_addr: u64,
    len: usize,
    row: RowId,
    cell_type: CellType,
}

/// A set of permission vectors, one byte each.
pub type PermissionVector = Vec<Permission>;

impl PermissionStore {
    /// Places `perms` at the start of `row`, one byte per entry.
    ///
    /// # Errors
    ///
    /// DRAM bounds errors; the row must hold `perms.len()` bytes.
    pub fn place(
        module: &mut DramModule,
        row: RowId,
        perms: &[Permission],
    ) -> Result<Self, DramError> {
        let base_addr = module.geometry().addr_of_row(row)?;
        let cell_type = module.cell_type_of_row(row)?;
        let bytes: Vec<u8> = perms.iter().map(|p| p.to_bits()).collect();
        module.write(base_addr, &bytes)?;
        Ok(PermissionStore { base_addr, len: perms.len(), row, cell_type })
    }

    /// The row holding the table.
    pub fn row(&self) -> RowId {
        self.row
    }

    /// The polarity of the storage cells.
    pub fn cell_type(&self) -> CellType {
        self.cell_type
    }

    /// Reads the current (possibly corrupted) table.
    ///
    /// # Errors
    ///
    /// DRAM bounds errors.
    pub fn read(&self, module: &mut DramModule) -> Result<PermissionVector, DramError> {
        let bytes = module.read(self.base_addr, self.len)?;
        Ok(bytes.into_iter().map(Permission::from_bits).collect())
    }

    /// Compares the stored table against `original` and counts corruptions
    /// by severity: `(escalations, denials)`.
    ///
    /// # Errors
    ///
    /// DRAM bounds errors.
    pub fn audit(
        &self,
        module: &mut DramModule,
        original: &[Permission],
    ) -> Result<(usize, usize), DramError> {
        let current = self.read(module)?;
        let mut escalations = 0;
        let mut denials = 0;
        for (now, was) in current.iter().zip(original) {
            if now.escalated_from(*was) {
                escalations += 1;
            } else if now != was {
                denials += 1;
            }
        }
        Ok((escalations, denials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_dram::{CellLayout, DisturbanceParams, DramConfig};

    fn module(layout: CellLayout) -> DramModule {
        let cfg =
            DramConfig::small_test().with_layout(layout).with_disturbance(DisturbanceParams {
                pf: 0.05,
                reverse_rate: 0.0,
                ..DisturbanceParams::default()
            });
        DramModule::new(cfg)
    }

    fn sample_perms(n: usize) -> Vec<Permission> {
        (0..n).map(|i| Permission::from_bits((i % 8) as u8)).collect()
    }

    #[test]
    fn permission_codec() {
        for bits in 0..8u8 {
            assert_eq!(Permission::from_bits(bits).to_bits(), bits);
        }
        let ro = Permission { read: true, write: false, execute: false };
        let rw = Permission { read: true, write: true, execute: false };
        assert!(rw.escalated_from(ro));
        assert!(!ro.escalated_from(rw));
        assert!(!ro.escalated_from(ro));
    }

    #[test]
    fn true_cell_store_never_escalates_under_hammer() {
        let mut m = module(CellLayout::AllTrue);
        let perms = sample_perms(512);
        let store = PermissionStore::place(&mut m, RowId(2), &perms).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        let (escalations, denials) = store.audit(&mut m, &perms).unwrap();
        assert_eq!(escalations, 0, "true-cells must not grant rights");
        assert!(denials > 0, "pf=5% over 512 entries should corrupt something");
    }

    #[test]
    fn anti_cell_store_escalates_under_hammer() {
        let mut m = module(CellLayout::AllAnti);
        let perms = sample_perms(512);
        let store = PermissionStore::place(&mut m, RowId(2), &perms).unwrap();
        m.hammer_double_sided(RowId(2)).unwrap();
        let (escalations, _) = store.audit(&mut m, &perms).unwrap();
        assert!(escalations > 0, "anti-cells set bits: rights get granted");
    }

    #[test]
    fn unhammered_store_audits_clean() {
        let mut m = module(CellLayout::AllTrue);
        let perms = sample_perms(100);
        let store = PermissionStore::place(&mut m, RowId(1), &perms).unwrap();
        assert_eq!(store.audit(&mut m, &perms).unwrap(), (0, 0));
        assert_eq!(store.cell_type(), CellType::True);
        assert_eq!(store.row(), RowId(1));
    }
}
