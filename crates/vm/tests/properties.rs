//! Property-based tests of the virtual-memory substrate.

use cta_mem::{Pfn, PtLevel, PAGE_SIZE};
use cta_vm::{Access, Kernel, KernelConfig, Pte, PteFlags, VirtAddr};
use proptest::prelude::*;

fn flags_strategy() -> impl Strategy<Value = PteFlags> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(present, writable, user, huge, nx)| PteFlags { present, writable, user, huge, nx },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PTE encode/decode is the identity on (frame, flags).
    #[test]
    fn pte_round_trips(pfn in 0u64..(1 << 40), flags in flags_strategy()) {
        let pte = Pte::new(Pfn(pfn), flags);
        prop_assert_eq!(pte.pfn(), Pfn(pfn));
        prop_assert_eq!(pte.flags(), flags);
    }

    /// Changing the frame never disturbs the flags and vice versa.
    #[test]
    fn with_pfn_is_orthogonal_to_flags(
        a in 0u64..(1 << 40),
        b in 0u64..(1 << 40),
        flags in flags_strategy(),
    ) {
        let pte = Pte::new(Pfn(a), flags).with_pfn(Pfn(b));
        prop_assert_eq!(pte.pfn(), Pfn(b));
        prop_assert_eq!(pte.flags(), flags);
    }

    /// Virtual address indices reassemble into the original page base.
    #[test]
    fn va_indices_reassemble(va in 0u64..(1u64 << 48)) {
        let v = VirtAddr(va);
        let rebuilt = (v.index(PtLevel::Pml4) << 39)
            | (v.index(PtLevel::Pdpt) << 30)
            | (v.index(PtLevel::Pd) << 21)
            | (v.index(PtLevel::Pt) << 12)
            | v.page_offset();
        prop_assert_eq!(rebuilt, va);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever is written through the MMU is read back identically, at
    /// arbitrary (possibly page-crossing) offsets.
    #[test]
    fn virt_io_round_trips(
        offset in 0u64..(3 * PAGE_SIZE),
        data in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let mut k = Kernel::new(KernelConfig::small_test()).unwrap();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, 4 * PAGE_SIZE, true).unwrap();
        k.write_virt(pid, va.offset(offset), &data, Access::user_write()).unwrap();
        let mut back = vec![0u8; data.len()];
        k.read_virt(pid, va.offset(offset), &mut back, Access::user_read()).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Translation through the TLB always equals translation through a
    /// fresh walk.
    #[test]
    fn tlb_translations_match_walks(pages in 1u64..8, probes in proptest::collection::vec(0u64..32, 1..40)) {
        let mut k = Kernel::new(KernelConfig::small_test()).unwrap();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, pages * PAGE_SIZE, true).unwrap();
        for p in probes {
            let target = va.offset((p % pages) * PAGE_SIZE + (p * 37) % PAGE_SIZE);
            let hot = k.translate(pid, target, Access::user_read()).unwrap();
            k.flush_tlb();
            let cold = k.translate(pid, target, Access::user_read()).unwrap();
            prop_assert_eq!(hot, cold);
        }
    }

    /// mmap/munmap sequences conserve memory exactly.
    #[test]
    fn mapping_churn_conserves_frames(ops in proptest::collection::vec((0u64..6, any::<bool>()), 1..30)) {
        let mut k = Kernel::new(KernelConfig::small_test()).unwrap();
        let pid = k.create_process(false).unwrap();
        let free_after_boot = k.allocator().free_page_count();
        let mut live = std::collections::HashSet::new();
        for (slot, map) in ops {
            let va = VirtAddr(0x4000_0000 + slot * (1 << 20));
            if map && !live.contains(&slot) {
                if k.mmap_anonymous(pid, va, 2 * PAGE_SIZE, true).is_ok() {
                    live.insert(slot);
                }
            } else if live.remove(&slot) {
                k.munmap(pid, va, 2 * PAGE_SIZE).unwrap();
            }
        }
        let pt = k.process(pid).unwrap().pt_pages().len() as u64 - 1; // cr3 predates
        let data = 2 * live.len() as u64;
        prop_assert_eq!(k.allocator().free_page_count(), free_after_boot - pt - data);
    }
}
