use std::error::Error;
use std::fmt;

use cta_dram::DramError;
use cta_mem::{AllocError, PtLevel};

use crate::addr::VirtAddr;
use crate::kernel::Pid;

/// Why a virtual-address translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslateError {
    /// The entry at `level` is not present.
    NotPresent {
        /// Faulting address.
        va: VirtAddr,
        /// Level whose entry was empty.
        level: PtLevel,
    },
    /// A permission bit denied the access.
    Protection {
        /// Faulting address.
        va: VirtAddr,
        /// Level whose entry denied it.
        level: PtLevel,
        /// The access was a write.
        write: bool,
        /// The access came from user mode.
        user: bool,
    },
    /// A (possibly corrupted) entry pointed beyond physical memory.
    BadFrame {
        /// Faulting address.
        va: VirtAddr,
        /// Level of the bad entry.
        level: PtLevel,
        /// The out-of-range frame.
        pfn: u64,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotPresent { va, level } => {
                write!(f, "page fault at {va}: {level} entry not present")
            }
            TranslateError::Protection { va, level, write, user } => write!(
                f,
                "protection fault at {va} ({} {} access) at {level}",
                if *user { "user" } else { "kernel" },
                if *write { "write" } else { "read" },
            ),
            TranslateError::BadFrame { va, level, pfn } => {
                write!(f, "{level} entry for {va} points at out-of-range frame {pfn}")
            }
        }
    }
}

impl Error for TranslateError {}

/// Errors reported by the kernel substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// Underlying DRAM error.
    Dram(DramError),
    /// Underlying allocation error.
    Alloc(AllocError),
    /// Translation fault.
    Translate(TranslateError),
    /// Unknown process.
    NoSuchProcess {
        /// The missing pid.
        pid: Pid,
    },
    /// Unknown file object.
    NoSuchFile,
    /// A mapping already exists at the address.
    AlreadyMapped {
        /// The conflicting address.
        va: VirtAddr,
    },
    /// No mapping exists at the address.
    NotMapped {
        /// The address.
        va: VirtAddr,
    },
    /// Address or length is not page-aligned.
    Unaligned {
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Dram(e) => write!(f, "dram: {e}"),
            VmError::Alloc(e) => write!(f, "alloc: {e}"),
            VmError::Translate(e) => write!(f, "translate: {e}"),
            VmError::NoSuchProcess { pid } => write!(f, "no such process {pid}"),
            VmError::NoSuchFile => f.write_str("no such file object"),
            VmError::AlreadyMapped { va } => write!(f, "address {va} is already mapped"),
            VmError::NotMapped { va } => write!(f, "address {va} is not mapped"),
            VmError::Unaligned { value } => write!(f, "{value:#x} is not page-aligned"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Dram(e) => Some(e),
            VmError::Alloc(e) => Some(e),
            VmError::Translate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for VmError {
    fn from(e: DramError) -> Self {
        VmError::Dram(e)
    }
}

impl From<AllocError> for VmError {
    fn from(e: AllocError) -> Self {
        VmError::Alloc(e)
    }
}

impl From<TranslateError> for VmError {
    fn from(e: TranslateError) -> Self {
        VmError::Translate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TranslateError::NotPresent { va: VirtAddr(0x1000), level: PtLevel::Pt };
        assert!(e.to_string().contains("0x1000"));
        let v: VmError = e.into();
        assert!(v.to_string().contains("translate"));
        assert!(v.source().is_some());
    }
}
