use std::fmt;

use cta_mem::Pfn;

/// Permission/attribute flags of a [`Pte`], in x86-64 bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags {
    /// Bit 0: entry is valid.
    pub present: bool,
    /// Bit 1: write access allowed.
    pub writable: bool,
    /// Bit 2: user-mode access allowed.
    pub user: bool,
    /// Bit 7: in non-leaf levels, the entry maps a huge page instead of
    /// pointing to a lower table (the *page-size bit* of section 7).
    pub huge: bool,
    /// Bit 63: no-execute.
    pub nx: bool,
}

impl PteFlags {
    /// Flags of an ordinary writable user data page.
    pub fn user_data() -> Self {
        PteFlags { present: true, writable: true, user: true, huge: false, nx: true }
    }

    /// Flags of a read-only user data page.
    pub fn user_readonly() -> Self {
        PteFlags { present: true, writable: false, user: true, huge: false, nx: true }
    }

    /// Flags of a kernel data page.
    pub fn kernel_data() -> Self {
        PteFlags { present: true, writable: true, user: false, huge: false, nx: true }
    }

    /// Flags of a non-leaf entry pointing at a lower-level table.
    ///
    /// Intermediate entries are maximally permissive (as Linux sets them);
    /// the leaf entry is what enforces permissions.
    pub fn table() -> Self {
        PteFlags { present: true, writable: true, user: true, huge: false, nx: false }
    }
}

/// An x86-64 page-table entry: 64 bits, little-endian in DRAM.
///
/// Layout (Intel SDM Vol. 3, simplified to the bits this system uses):
///
/// ```text
/// bit 0      P    present
/// bit 1      R/W  writable
/// bit 2      U/S  user-accessible
/// bit 7      PS   page size (non-leaf levels)
/// bits 12-51      physical frame number
/// bit 63     NX   no-execute
/// ```
///
/// The frame field is the attack surface of this whole project: a
/// RowHammer-induced `0→1` flip inside bits 12–51 can redirect the entry to
/// a different — possibly page-table — frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(pub u64);

/// Mask of the physical-frame field (bits 12–51).
pub const PTE_ADDR_MASK: u64 = 0x000F_FFFF_FFFF_F000;

const BIT_PRESENT: u64 = 1 << 0;
const BIT_WRITABLE: u64 = 1 << 1;
const BIT_USER: u64 = 1 << 2;
const BIT_HUGE: u64 = 1 << 7;
const BIT_NX: u64 = 1 << 63;

impl Pte {
    /// An all-zero (not-present) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Builds an entry pointing at `pfn` with `flags`.
    pub fn new(pfn: Pfn, flags: PteFlags) -> Self {
        let mut v = (pfn.0 << 12) & PTE_ADDR_MASK;
        if flags.present {
            v |= BIT_PRESENT;
        }
        if flags.writable {
            v |= BIT_WRITABLE;
        }
        if flags.user {
            v |= BIT_USER;
        }
        if flags.huge {
            v |= BIT_HUGE;
        }
        if flags.nx {
            v |= BIT_NX;
        }
        Pte(v)
    }

    /// The physical frame the entry points to.
    pub fn pfn(self) -> Pfn {
        Pfn((self.0 & PTE_ADDR_MASK) >> 12)
    }

    /// Present bit.
    pub fn present(self) -> bool {
        self.0 & BIT_PRESENT != 0
    }

    /// Writable bit.
    pub fn writable(self) -> bool {
        self.0 & BIT_WRITABLE != 0
    }

    /// User-accessible bit.
    pub fn user(self) -> bool {
        self.0 & BIT_USER != 0
    }

    /// Page-size bit (meaningful at PD/PDPT levels).
    pub fn huge(self) -> bool {
        self.0 & BIT_HUGE != 0
    }

    /// No-execute bit.
    pub fn nx(self) -> bool {
        self.0 & BIT_NX != 0
    }

    /// The decoded flags.
    pub fn flags(self) -> PteFlags {
        PteFlags {
            present: self.present(),
            writable: self.writable(),
            user: self.user(),
            huge: self.huge(),
            nx: self.nx(),
        }
    }

    /// Returns a copy with the frame replaced.
    pub fn with_pfn(self, pfn: Pfn) -> Pte {
        Pte((self.0 & !PTE_ADDR_MASK) | ((pfn.0 << 12) & PTE_ADDR_MASK))
    }

    /// Heuristic used by attackers scanning leaked memory (Figure 3 step 3):
    /// does this 64-bit value *look like* a PTE? Present + user + writable
    /// with a frame below `max_pfn` and no reserved low-junk is the pattern
    /// Project Zero's exploit greps for.
    pub fn looks_like_user_pte(self, max_pfn: u64) -> bool {
        self.present()
            && self.user()
            && self.writable()
            && self.pfn().0 < max_pfn
            && self.pfn().0 != 0
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.present() {
            return write!(f, "PTE[not-present raw={:#x}]", self.0);
        }
        write!(
            f,
            "PTE[{} {}{}{}{}{}]",
            self.pfn(),
            if self.writable() { "W" } else { "-" },
            if self.user() { "U" } else { "K" },
            if self.huge() { "H" } else { "-" },
            if self.nx() { "X̶" } else { "x" },
            if self.present() { "P" } else { "-" },
        )
    }
}

impl fmt::LowerHex for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        let p = Pte::new(Pfn(0x1234), PteFlags::user_data());
        assert!(p.present());
        assert!(p.writable());
        assert!(p.user());
        assert!(!p.huge());
        assert!(p.nx());
        assert_eq!(p.pfn(), Pfn(0x1234));
    }

    #[test]
    fn empty_is_not_present() {
        assert!(!Pte::EMPTY.present());
        assert_eq!(Pte::EMPTY.pfn(), Pfn(0));
    }

    #[test]
    fn frame_field_is_bits_12_to_51() {
        let p = Pte::new(Pfn((1 << 40) - 1), PteFlags::table());
        assert_eq!(p.pfn(), Pfn((1 << 40) - 1));
        // Frame bits do not clobber NX or low flags.
        assert!(!p.nx());
        assert!(p.present());
    }

    #[test]
    fn with_pfn_preserves_flags() {
        let p = Pte::new(Pfn(5), PteFlags::kernel_data()).with_pfn(Pfn(9));
        assert_eq!(p.pfn(), Pfn(9));
        assert!(p.present());
        assert!(!p.user());
        assert!(p.writable());
    }

    #[test]
    fn flags_round_trip() {
        for flags in [
            PteFlags::user_data(),
            PteFlags::user_readonly(),
            PteFlags::kernel_data(),
            PteFlags::table(),
        ] {
            assert_eq!(Pte::new(Pfn(7), flags).flags(), flags);
        }
    }

    #[test]
    fn pte_heuristic() {
        assert!(Pte::new(Pfn(100), PteFlags::user_data()).looks_like_user_pte(1 << 20));
        assert!(!Pte::new(Pfn(100), PteFlags::kernel_data()).looks_like_user_pte(1 << 20));
        assert!(!Pte::EMPTY.looks_like_user_pte(1 << 20));
        assert!(!Pte::new(Pfn(1 << 30), PteFlags::user_data()).looks_like_user_pte(1 << 20));
    }

    #[test]
    fn display_forms() {
        let p = Pte::new(Pfn(3), PteFlags::user_data());
        assert!(p.to_string().contains("pfn#3"));
        assert!(Pte::EMPTY.to_string().contains("not-present"));
        assert_eq!(format!("{:x}", Pte(0xabc)), "abc");
    }
}
