//! Virtual-memory substrate: x86-64 page tables living in simulated DRAM.
//!
//! The defining property of this crate is that page tables are not Rust data
//! structures — they are **bytes in the simulated DRAM module** of
//! [`cta_dram`]. The software MMU ([`Walker`]) reads page-table entries with
//! ordinary DRAM reads, so when a RowHammer attack flips bits in a
//! page-table row, translation *actually changes*, and privilege-escalation
//! attacks can be demonstrated (and defeated) end to end rather than
//! asserted.
//!
//! The crate provides:
//!
//! - [`Pte`]: the x86-64 page-table-entry bit layout (present, writable,
//!   user, page-size bit 7, NX, 40-bit frame field);
//! - [`VirtAddr`] and per-level index extraction for the 4-level hierarchy;
//! - [`Walker`]: a software page-table walk with permission checks;
//! - [`Tlb`]: a fixed-size set-associative TLB with explicit flushes
//!   (RowHammer attacks flush it to force walks);
//! - [`Psc`]: the per-level paging-structure caches (PML4E/PDPTE/PDE) that
//!   let a TLB miss resume its walk below CR3, with x86-faithful
//!   invalidation so corruption experiments always re-walk live DRAM;
//! - [`Kernel`]: a miniature OS — processes, `mmap` of shared file objects
//!   (the page-table *spray* primitive of Figure 3), demand allocation,
//!   and `pte_alloc`, the function the paper's 18-line patch redirects to
//!   `__GFP_PTP`.
//!
//! # Example
//!
//! ```
//! use cta_vm::{Access, Kernel, KernelConfig, VirtAddr};
//!
//! # fn main() -> Result<(), cta_vm::VmError> {
//! let mut kernel = Kernel::new(KernelConfig::small_test())?;
//! let pid = kernel.create_process(false)?;
//! let va = VirtAddr(0x4000_0000);
//! kernel.mmap_anonymous(pid, va, 0x4000, true)?;
//! kernel.write_virt(pid, va, &[1, 2, 3], Access::user_write())?;
//! let mut buf = [0u8; 3];
//! kernel.read_virt(pid, va, &mut buf, Access::user_read())?;
//! assert_eq!(buf, [1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod file;
mod kernel;
mod pool;
mod psc;
mod pte;
mod setassoc;
mod tlb;
mod walker;

pub use addr::VirtAddr;
pub use error::{TranslateError, VmError};
pub use file::{FileId, FileObject};
pub use kernel::{
    FrameOwner, Kernel, KernelConfig, KernelStats, Pid, Process, PteRecord, HUGE_PAGE_SIZE,
};
pub use pool::{KernelPool, PoolStats};
pub use psc::{Psc, PscEntry, PscStats};
pub use pte::{Pte, PteFlags, PTE_ADDR_MASK};
pub use tlb::{Tlb, TlbStats};
pub use walker::{Access, PhysWalk, WalkResult, WalkStart, Walker};
