//! Boot-once parent-kernel pools for fork-per-trial services.
//!
//! Booting a kernel — building page tables, profiling true/anti-cells,
//! compiling the vulnerability map — dominates a trial's cost, while
//! [`Kernel::fork`] on the CoW backend is O(changed rows). A long-running
//! campaign service therefore keeps *parent* kernels (one per distinct
//! boot configuration) alive and hands out forks per trial — or, with
//! [`KernelPool::run_journaled`], runs the trial **in place** on the
//! parent under an undo journal and rolls it back, skipping the per-trial
//! copy entirely.
//!
//! [`KernelPool`] is that cache: an LRU map from an opaque configuration
//! key to a booted parent, order-indexed (hash map plus a recency-stamped
//! [`BTreeMap`]) so hits, touches, and LRU evictions are all O(log
//! parents) instead of the former O(parents) scan-and-rotate. It is
//! deliberately **not** thread-safe — `Kernel` is `!Send` by design (its
//! DRAM model shares `Rc` state), so a pool lives inside one worker's
//! local context and parents never cross threads. The executor layer
//! gives each worker its own pool; capacity and the per-parent
//! model-cache byte budget bound a worker's resident memory at
//! O(parents + in-flight forks).
//!
//! Determinism: `fork()` of a freshly-booted kernel is bit-identical to a
//! second boot from the same config (pinned by the backend differential
//! suites), and a journaled trial's rollback restores the parent
//! byte-identically (pinned by the isolation differential suites), so
//! *how* a trial's kernel was served — pool hit, fresh boot, fork, or
//! in-place journal — is invisible in its results.
//!
//! A parent abandoned mid-journal (a trial body that panicked before its
//! rollback) is repaired defensively: the pool rolls the open journal
//! back before the parent is forked, served again, or evicted, so dirty
//! trial state can never leak into a later trial.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use crate::error::VmError;
use crate::kernel::Kernel;

/// Cumulative counters for one [`KernelPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parents booted because no cached parent matched the key.
    pub boots: u64,
    /// Trials served from an already-resident parent.
    pub fork_hits: u64,
    /// Trials served in total (`boots + fork_hits`), whether by fork or
    /// in-place journal.
    pub forks: u64,
    /// The subset of trials served in place under an undo journal.
    pub journal_runs: u64,
    /// Parents evicted (LRU) to stay within capacity.
    pub evictions: u64,
}

/// One resident parent: its booted kernel plus the recency stamp indexing
/// it in the pool's LRU order.
#[derive(Debug)]
struct Parent {
    stamp: u64,
    kernel: Kernel,
}

/// An LRU cache of booted parent kernels, keyed by an opaque
/// configuration key `K`.
#[derive(Debug)]
pub struct KernelPool<K: Eq + Hash + Clone> {
    parents: HashMap<K, Parent>,
    /// Recency index: stamp → key, smallest stamp least-recently used.
    /// Stamps are unique (monotonic counter), so this is a total order.
    order: BTreeMap<u64, K>,
    next_stamp: u64,
    capacity: usize,
    stats: PoolStats,
}

impl<K: Eq + Hash + Clone> KernelPool<K> {
    /// Creates a pool holding at most `capacity` parents (clamped to 1).
    pub fn new(capacity: usize) -> Self {
        KernelPool {
            parents: HashMap::new(),
            order: BTreeMap::new(),
            next_stamp: 0,
            capacity: capacity.max(1),
            stats: PoolStats::default(),
        }
    }

    /// Returns a fork of the parent for `key`, booting (and caching) the
    /// parent via `boot` if it is not resident. The touched parent moves
    /// to most-recently-used; a boot that overflows capacity evicts the
    /// least-recently-used parent first.
    ///
    /// # Errors
    ///
    /// Propagates the boot error; the pool is unchanged in that case.
    pub fn fork_for<F>(&mut self, key: &K, boot: F) -> Result<Kernel, VmError>
    where
        F: FnOnce() -> Result<Kernel, VmError>,
    {
        self.ensure_resident(key, boot)?;
        self.stats.forks += 1;
        Ok(self.parents.get(key).expect("parent just ensured").kernel.fork())
    }

    /// Runs `trial` **in place** on the parent for `key` under an undo
    /// journal, rolling the parent back afterwards — the O(touched state)
    /// alternative to [`Self::fork_for`]. The parent is booted via `boot`
    /// if not resident and touched to most-recently-used exactly as a
    /// fork would.
    ///
    /// # Errors
    ///
    /// Propagates the boot error; the pool is unchanged in that case.
    pub fn run_journaled<F, B, R>(&mut self, key: &K, boot: B, trial: F) -> Result<R, VmError>
    where
        B: FnOnce() -> Result<Kernel, VmError>,
        F: FnOnce(&mut Kernel) -> R,
    {
        self.ensure_resident(key, boot)?;
        self.stats.forks += 1;
        self.stats.journal_runs += 1;
        let kernel = &mut self.parents.get_mut(key).expect("parent just ensured").kernel;
        kernel.journal_begin();
        let out = trial(kernel);
        kernel.journal_rollback();
        Ok(out)
    }

    /// Boots or touches the parent for `key`, repairing any journal left
    /// open by an abandoned trial so the caller always sees a clean
    /// parent.
    fn ensure_resident<B>(&mut self, key: &K, boot: B) -> Result<(), VmError>
    where
        B: FnOnce() -> Result<Kernel, VmError>,
    {
        if let Some(parent) = self.parents.get_mut(key) {
            if parent.kernel.journal_active() {
                parent.kernel.journal_rollback();
            }
            self.order.remove(&parent.stamp);
            parent.stamp = self.next_stamp;
            self.order.insert(self.next_stamp, key.clone());
            self.next_stamp += 1;
            self.stats.fork_hits += 1;
            return Ok(());
        }
        let kernel = boot()?;
        self.stats.boots += 1;
        if self.parents.len() >= self.capacity {
            self.evict_lru();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.order.insert(stamp, key.clone());
        self.parents.insert(key.clone(), Parent { stamp, kernel });
        Ok(())
    }

    /// Evicts the least-recently-used parent. A parent abandoned with an
    /// open journal is rolled back first, so its drop never carries dirty
    /// trial state (and a caller holding stale observations of it — model
    /// cache gauges, for instance — saw the clean parent).
    fn evict_lru(&mut self) {
        let Some((_, key)) = self.order.pop_first() else { return };
        let mut parent = self.parents.remove(&key).expect("order and parents agree");
        if parent.kernel.journal_active() {
            parent.kernel.journal_rollback();
        }
        self.stats.evictions += 1;
    }

    /// Number of resident parents.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no parents are resident.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Maximum number of resident parents.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the capacity (clamped to 1), evicting LRU parents as
    /// needed to fit.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.parents.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// True if a parent for `key` is resident.
    pub fn contains(&self, key: &K) -> bool {
        self.parents.contains_key(key)
    }

    /// Drops every resident parent (counted as evictions).
    pub fn clear(&mut self) {
        self.stats.evictions += self.parents.len() as u64;
        self.parents.clear();
        self.order.clear();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Total DRAM model-cache bytes held by resident parents — the gauge
    /// a service publishes against its per-tenant memory limits.
    pub fn model_cache_bytes(&self) -> u64 {
        self.parents.values().map(|p| p.kernel.dram().model_cache_bytes() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};

    fn boot() -> Result<Kernel, VmError> {
        Kernel::new(KernelConfig::small_test())
    }

    #[test]
    fn second_fork_hits_the_cached_parent() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        let first = pool.fork_for(&7, boot).expect("boot");
        let second = pool.fork_for(&7, boot).expect("fork hit");
        let stats = pool.stats();
        assert_eq!((stats.boots, stats.fork_hits, stats.forks), (1, 1, 2));
        assert_eq!(pool.len(), 1);
        // Hit and miss forks are the same machine.
        assert_eq!(
            first.dram().config().geometry.row_bytes(),
            second.dram().config().geometry.row_bytes()
        );
    }

    #[test]
    fn lru_eviction_keeps_recently_used_parents() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        pool.fork_for(&1, boot).expect("boot 1");
        pool.fork_for(&2, boot).expect("boot 2");
        pool.fork_for(&1, boot).expect("hit 1"); // 1 is now MRU
        pool.fork_for(&3, boot).expect("boot 3"); // evicts 2
        assert!(pool.contains(&1) && pool.contains(&3) && !pool.contains(&2));
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn failed_boot_leaves_pool_unchanged() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        pool.fork_for(&1, boot).expect("boot 1");
        let err = pool.fork_for(&2, || Err(VmError::NoSuchFile));
        assert!(err.is_err());
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().boots, 1);
    }

    #[test]
    fn shrinking_capacity_evicts_lru_first() {
        let mut pool: KernelPool<u32> = KernelPool::new(3);
        for key in 1..=3 {
            pool.fork_for(&key, boot).expect("boot");
        }
        pool.set_capacity(1);
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&3));
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn clear_counts_evictions_and_empties() {
        let mut pool: KernelPool<u32> = KernelPool::new(4);
        pool.fork_for(&1, boot).expect("boot");
        pool.fork_for(&2, boot).expect("boot");
        pool.clear();
        assert_eq!(pool.model_cache_bytes(), 0);
        assert!(pool.is_empty());
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn journaled_run_leaves_the_parent_clean_and_counts_a_hit() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        let reference = pool.fork_for(&1, boot).expect("boot");
        let before = reference.dram().stats().clone();
        let flips = pool
            .run_journaled(&1, boot, |kernel| {
                kernel.dram_mut().fill(0, 4096, 0xFF).expect("fill");
                kernel.dram_mut().hammer_double_sided(cta_dram::RowId(2)).expect("hammer");
                kernel.dram_mut().stats().total_flips()
            })
            .expect("journaled trial");
        assert!(flips > 0, "the trial really ran");
        // The parent rolled back: a fresh fork matches the pre-trial fork.
        let after = pool.fork_for(&1, boot).expect("fork");
        assert_eq!(after.dram().stats(), &before);
        let stats = pool.stats();
        assert_eq!((stats.boots, stats.fork_hits, stats.journal_runs), (1, 2, 1));
        assert_eq!(stats.forks, stats.boots + stats.fork_hits);
    }

    #[test]
    fn eviction_rolls_back_an_abandoned_journal() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        pool.fork_for(&1, boot).expect("boot 1");
        // Simulate a trial that panicked mid-journal: the resident parent
        // is left with an open journal and dirty state.
        pool.parents.get_mut(&1).expect("resident").kernel.journal_begin();
        pool.parents
            .get_mut(&1)
            .expect("resident")
            .kernel
            .dram_mut()
            .fill(0, 4096, 0xAA)
            .expect("dirty the parent");
        assert!(pool.parents[&1].kernel.journal_active());

        // Capacity pressure evicts the abandoned parent: the journal must
        // be rolled back before the drop (evicting a dirty parent would
        // otherwise be the one path where trial state escapes).
        pool.fork_for(&2, boot).expect("boot 2");
        pool.fork_for(&3, boot).expect("boot 3 evicts 1");
        assert!(!pool.contains(&1));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn serving_a_parent_with_an_abandoned_journal_repairs_it_first() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        let clean = pool.fork_for(&1, boot).expect("boot");
        let want = clean.dram().peek(0, 64).expect("peek");
        pool.parents.get_mut(&1).expect("resident").kernel.journal_begin();
        pool.parents
            .get_mut(&1)
            .expect("resident")
            .kernel
            .dram_mut()
            .fill(0, 64, 0xEE)
            .expect("dirty the parent");

        // A fork served from the abandoned parent must see the clean
        // (rolled-back) machine, not the dead trial's bytes.
        let fork = pool.fork_for(&1, boot).expect("fork repairs");
        assert_eq!(fork.dram().peek(0, 64).expect("peek"), want);
        assert!(!pool.parents[&1].kernel.journal_active());
    }
}
