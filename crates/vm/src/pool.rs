//! Boot-once parent-kernel pools for fork-per-trial services.
//!
//! Booting a kernel — building page tables, profiling true/anti-cells,
//! compiling the vulnerability map — dominates a trial's cost, while
//! [`Kernel::fork`] on the CoW backend is O(changed rows). A long-running
//! campaign service therefore keeps *parent* kernels (one per distinct
//! boot configuration) alive and hands out forks per trial.
//!
//! [`KernelPool`] is that cache: an LRU map from an opaque configuration
//! key to a booted parent. It is deliberately **not** thread-safe —
//! `Kernel` is `!Send` by design (its DRAM model shares `Rc` state), so a
//! pool lives inside one worker's local context and parents never cross
//! threads. The executor layer gives each worker its own pool; capacity
//! and the per-parent model-cache byte budget bound a worker's resident
//! memory at O(parents + in-flight forks).
//!
//! Determinism: `fork()` of a freshly-booted kernel is bit-identical to a
//! second boot from the same config (pinned by the backend differential
//! suites), so *whether* a trial's kernel came from a pool hit or a fresh
//! boot is invisible in its results.

use crate::error::VmError;
use crate::kernel::Kernel;

/// Cumulative counters for one [`KernelPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parents booted because no cached parent matched the key.
    pub boots: u64,
    /// Forks served from an already-resident parent.
    pub fork_hits: u64,
    /// Forks handed out in total (`boots + fork_hits`).
    pub forks: u64,
    /// Parents evicted (LRU) to stay within capacity.
    pub evictions: u64,
}

/// An LRU cache of booted parent kernels, keyed by an opaque
/// configuration key `K`.
#[derive(Debug)]
pub struct KernelPool<K: Eq + Clone> {
    /// LRU order: least-recently-used first, most-recently-used last.
    parents: Vec<(K, Kernel)>,
    capacity: usize,
    stats: PoolStats,
}

impl<K: Eq + Clone> KernelPool<K> {
    /// Creates a pool holding at most `capacity` parents (clamped to 1).
    pub fn new(capacity: usize) -> Self {
        KernelPool { parents: Vec::new(), capacity: capacity.max(1), stats: PoolStats::default() }
    }

    /// Returns a fork of the parent for `key`, booting (and caching) the
    /// parent via `boot` if it is not resident. The touched parent moves
    /// to most-recently-used; a boot that overflows capacity evicts the
    /// least-recently-used parent first.
    ///
    /// # Errors
    ///
    /// Propagates the boot error; the pool is unchanged in that case.
    pub fn fork_for<F>(&mut self, key: &K, boot: F) -> Result<Kernel, VmError>
    where
        F: FnOnce() -> Result<Kernel, VmError>,
    {
        if let Some(position) = self.parents.iter().position(|(k, _)| k == key) {
            let entry = self.parents.remove(position);
            self.parents.push(entry);
            self.stats.fork_hits += 1;
        } else {
            let parent = boot()?;
            self.stats.boots += 1;
            if self.parents.len() >= self.capacity {
                self.parents.remove(0);
                self.stats.evictions += 1;
            }
            self.parents.push((key.clone(), parent));
        }
        self.stats.forks += 1;
        Ok(self.parents.last().expect("parent just touched").1.fork())
    }

    /// Number of resident parents.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no parents are resident.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Maximum number of resident parents.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the capacity (clamped to 1), evicting LRU parents as
    /// needed to fit.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.parents.len() > self.capacity {
            self.parents.remove(0);
            self.stats.evictions += 1;
        }
    }

    /// True if a parent for `key` is resident.
    pub fn contains(&self, key: &K) -> bool {
        self.parents.iter().any(|(k, _)| k == key)
    }

    /// Drops every resident parent (counted as evictions).
    pub fn clear(&mut self) {
        self.stats.evictions += self.parents.len() as u64;
        self.parents.clear();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Total DRAM model-cache bytes held by resident parents — the gauge
    /// a service publishes against its per-tenant memory limits.
    pub fn model_cache_bytes(&self) -> u64 {
        self.parents.iter().map(|(_, kernel)| kernel.dram().model_cache_bytes() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};

    fn boot() -> Result<Kernel, VmError> {
        Kernel::new(KernelConfig::small_test())
    }

    #[test]
    fn second_fork_hits_the_cached_parent() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        let first = pool.fork_for(&7, boot).expect("boot");
        let second = pool.fork_for(&7, boot).expect("fork hit");
        let stats = pool.stats();
        assert_eq!((stats.boots, stats.fork_hits, stats.forks), (1, 1, 2));
        assert_eq!(pool.len(), 1);
        // Hit and miss forks are the same machine.
        assert_eq!(
            first.dram().config().geometry.row_bytes(),
            second.dram().config().geometry.row_bytes()
        );
    }

    #[test]
    fn lru_eviction_keeps_recently_used_parents() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        pool.fork_for(&1, boot).expect("boot 1");
        pool.fork_for(&2, boot).expect("boot 2");
        pool.fork_for(&1, boot).expect("hit 1"); // 1 is now MRU
        pool.fork_for(&3, boot).expect("boot 3"); // evicts 2
        assert!(pool.contains(&1) && pool.contains(&3) && !pool.contains(&2));
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn failed_boot_leaves_pool_unchanged() {
        let mut pool: KernelPool<u32> = KernelPool::new(2);
        pool.fork_for(&1, boot).expect("boot 1");
        let err = pool.fork_for(&2, || Err(VmError::NoSuchFile));
        assert!(err.is_err());
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats().boots, 1);
    }

    #[test]
    fn shrinking_capacity_evicts_lru_first() {
        let mut pool: KernelPool<u32> = KernelPool::new(3);
        for key in 1..=3 {
            pool.fork_for(&key, boot).expect("boot");
        }
        pool.set_capacity(1);
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&3));
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn clear_counts_evictions_and_empties() {
        let mut pool: KernelPool<u32> = KernelPool::new(4);
        pool.fork_for(&1, boot).expect("boot");
        pool.fork_for(&2, boot).expect("boot");
        pool.clear();
        assert_eq!(pool.model_cache_bytes(), 0);
        assert!(pool.is_empty());
        assert_eq!(pool.stats().evictions, 2);
    }
}
