//! Paging-structure caches (PSC): the MMU-internal caches of non-leaf
//! page-table entries that let a TLB miss resume its walk below CR3.
//!
//! x86 MMUs keep a PML4E cache, a PDPTE cache, and a PDE cache keyed by the
//! virtual-address prefix each level translates (bits 47:39, 47:30, 47:21).
//! On a TLB miss the hardware probes them deepest-first: a PDE-cache hit
//! costs one PTE read instead of a 4-level walk. We model exactly that,
//! keyed by `(pid, prefix)` since the simulator has no ASIDs.
//!
//! Invalidation follows the SDM: `invlpg` (our `flush_page`) drops the
//! paging-structure-cache entries covering the page alongside its TLB entry,
//! and a CR3 reload (`flush_all`) empties everything. The kernel routes
//! every PTE store through the same invalidation, so corruption experiments
//! that flush a page always re-walk live DRAM — a stale-but-flushed cache
//! can never serve an old frame.
//!
//! Only *non-leaf* entries are cached (a huge PD/PDPT leaf goes to the TLB,
//! never here), and each cached entry carries the cumulative AND of the
//! user/writable bits of every level walked to reach it, mirroring how
//! hardware folds upper-level permissions into the cached copy.

use std::fmt;

use cta_mem::PtLevel;
use cta_telemetry::{Group, StatSource};

use crate::addr::VirtAddr;
use crate::kernel::Pid;
use crate::setassoc::SetAssoc;

/// A cached non-leaf entry: where the next-level table lives plus the
/// cumulative permissions of every level summarized by the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PscEntry {
    /// Physical byte address of the next-level table.
    pub table: u64,
    /// Every summarized level granted writes.
    pub writable: bool,
    /// Every summarized level granted user access.
    pub user: bool,
}

/// PSC hit/miss/invalidation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PscStats {
    /// Lookups that hit some level (the walk resumed below CR3).
    pub hits: u64,
    /// Lookups that missed every level (full walk from CR3).
    pub misses: u64,
    /// Entries dropped by targeted invalidation (`invalidate_page`,
    /// `flush_pid`) — PTE stores and `invlpg` land here.
    pub invalidations: u64,
    /// Full clears (`flush_all`: CR3 reload).
    pub flushes: u64,
}

impl PscStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for PscStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} invalidations={} flushes={}",
            self.hits, self.misses, self.invalidations, self.flushes
        )
    }
}

impl StatSource for PscStats {
    fn group(&self) -> &'static str {
        "psc"
    }

    fn record(&self, g: &mut Group) {
        g.add_u64("hits", self.hits);
        g.add_u64("misses", self.misses);
        g.add_u64("invalidations", self.invalidations);
        g.add_u64("flushes", self.flushes);
    }
}

/// The three cached non-leaf levels, each with the right-shift producing its
/// va prefix and the level a hit at it resumes the walk at.
const LEVELS: [(PtLevel, u32, PtLevel); 3] = [
    (PtLevel::Pml4, 39, PtLevel::Pdpt),
    (PtLevel::Pdpt, 30, PtLevel::Pd),
    (PtLevel::Pd, 21, PtLevel::Pt),
];

fn level_slot(level: PtLevel) -> Option<usize> {
    match level {
        PtLevel::Pml4 => Some(0),
        PtLevel::Pdpt => Some(1),
        PtLevel::Pd => Some(2),
        PtLevel::Pt => None,
    }
}

/// Per-level paging-structure caches with a shared counter block.
///
/// Built with `entries_per_level == 0` the PSC is disabled: lookups miss
/// without counting and inserts are dropped, so a kernel configured that way
/// behaves exactly like one predating the cache.
#[derive(Debug, Clone)]
pub struct Psc {
    caches: Option<[SetAssoc<PscEntry>; 3]>,
    stats: PscStats,
}

impl Psc {
    /// Creates the three per-level caches, each holding at least
    /// `entries_per_level` entries; 0 disables the PSC entirely.
    pub fn new(entries_per_level: usize) -> Self {
        let caches = (entries_per_level > 0).then(|| {
            [
                SetAssoc::new(entries_per_level),
                SetAssoc::new(entries_per_level),
                SetAssoc::new(entries_per_level),
            ]
        });
        Psc { caches, stats: PscStats::default() }
    }

    /// Whether the PSC caches anything at all.
    pub fn enabled(&self) -> bool {
        self.caches.is_some()
    }

    /// Probes the caches deepest-first (PDE, then PDPTE, then PML4E) and
    /// returns the level the walk should resume at plus the cached entry.
    /// Counts one hit or miss per call; a disabled PSC counts nothing.
    pub fn lookup(&mut self, pid: Pid, va: VirtAddr) -> Option<(PtLevel, PscEntry)> {
        let caches = self.caches.as_mut()?;
        for (slot, &(_, shift, resume)) in LEVELS.iter().enumerate().rev() {
            if let Some(entry) = caches[slot].lookup(pid, va.0 >> shift) {
                self.stats.hits += 1;
                return Some((resume, entry));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Caches the non-leaf entry read at `level` during a successful walk of
    /// `va`. Leaf levels (PT, or huge PD/PDPT entries — the walker never
    /// reports those as intermediates) are ignored.
    pub fn insert(&mut self, pid: Pid, va: VirtAddr, level: PtLevel, entry: PscEntry) {
        let Some(caches) = self.caches.as_mut() else { return };
        let Some(slot) = level_slot(level) else { return };
        let shift = LEVELS[slot].1;
        caches[slot].insert(pid, va.0 >> shift, entry);
    }

    /// `invlpg` semantics: drops the cached entries of every level covering
    /// `va`, counting each entry actually removed.
    pub fn invalidate_page(&mut self, pid: Pid, va: VirtAddr) {
        let Some(caches) = self.caches.as_mut() else { return };
        for (slot, &(_, shift, _)) in LEVELS.iter().enumerate() {
            if caches[slot].remove(pid, va.0 >> shift) {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Drops every entry of one process (context teardown).
    pub fn flush_pid(&mut self, pid: Pid) {
        let Some(caches) = self.caches.as_mut() else { return };
        for cache in caches.iter_mut() {
            self.stats.invalidations += cache.remove_pid(pid);
        }
    }

    /// CR3-reload semantics: empties every level.
    pub fn flush_all(&mut self) {
        let Some(caches) = self.caches.as_mut() else { return };
        for cache in caches.iter_mut() {
            cache.clear();
        }
        self.stats.flushes += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PscStats {
        self.stats
    }

    /// Total live entries across the three levels.
    pub fn len(&self) -> usize {
        self.caches.as_ref().map_or(0, |c| c.iter().map(SetAssoc::len).sum())
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(table: u64) -> PscEntry {
        PscEntry { table, writable: true, user: true }
    }

    /// A va plus entries for all three of its non-leaf levels.
    fn fill_all_levels(psc: &mut Psc, pid: Pid, va: VirtAddr) {
        psc.insert(pid, va, PtLevel::Pml4, entry(0x1000));
        psc.insert(pid, va, PtLevel::Pdpt, entry(0x2000));
        psc.insert(pid, va, PtLevel::Pd, entry(0x3000));
    }

    #[test]
    fn disabled_psc_is_inert() {
        let mut psc = Psc::new(0);
        assert!(!psc.enabled());
        psc.insert(Pid(1), VirtAddr(0), PtLevel::Pd, entry(0x3000));
        assert!(psc.lookup(Pid(1), VirtAddr(0)).is_none());
        psc.invalidate_page(Pid(1), VirtAddr(0));
        psc.flush_pid(Pid(1));
        psc.flush_all();
        assert_eq!(psc.stats(), PscStats::default(), "disabled PSC counts nothing");
        assert!(psc.is_empty());
    }

    #[test]
    fn lookup_prefers_the_deepest_cached_level() {
        let mut psc = Psc::new(16);
        let va = VirtAddr(0x4020_3000);
        fill_all_levels(&mut psc, Pid(1), va);
        let (resume, e) = psc.lookup(Pid(1), va).unwrap();
        assert_eq!(resume, PtLevel::Pt, "PDE hit resumes at the leaf level");
        assert_eq!(e.table, 0x3000);
        // Any va sharing the 2 MiB prefix hits the same PDE entry.
        let (resume, _) = psc.lookup(Pid(1), VirtAddr(0x403F_F000)).unwrap();
        assert_eq!(resume, PtLevel::Pt);
        assert_eq!(psc.stats().hits, 2);
    }

    #[test]
    fn shallower_levels_back_up_deeper_misses() {
        let mut psc = Psc::new(16);
        let va = VirtAddr(0x4020_3000);
        psc.insert(Pid(1), va, PtLevel::Pml4, entry(0x1000));
        // Different 2 MiB / 1 GiB prefix, same 512 GiB prefix: only the
        // PML4E cache can serve it.
        let sibling = VirtAddr(0x23_4567_8000);
        let (resume, e) = psc.lookup(Pid(1), sibling).unwrap();
        assert_eq!(resume, PtLevel::Pdpt, "PML4E hit resumes at PDPT");
        assert_eq!(e.table, 0x1000);
    }

    #[test]
    fn leaf_levels_are_never_cached() {
        let mut psc = Psc::new(16);
        psc.insert(Pid(1), VirtAddr(0), PtLevel::Pt, entry(0x9000));
        assert!(psc.is_empty());
        assert!(psc.lookup(Pid(1), VirtAddr(0)).is_none());
        assert_eq!(psc.stats().misses, 1);
    }

    #[test]
    fn invalidate_page_drops_every_covering_level() {
        let mut psc = Psc::new(16);
        let va = VirtAddr(0x4020_3000);
        fill_all_levels(&mut psc, Pid(1), va);
        assert_eq!(psc.len(), 3);
        psc.invalidate_page(Pid(1), va);
        assert!(psc.is_empty());
        assert_eq!(psc.stats().invalidations, 3);
        assert!(psc.lookup(Pid(1), va).is_none());
        // Re-invalidating an empty cache removes (and counts) nothing.
        psc.invalidate_page(Pid(1), va);
        assert_eq!(psc.stats().invalidations, 3);
    }

    #[test]
    fn invalidation_spares_unrelated_prefixes() {
        let mut psc = Psc::new(16);
        let a = VirtAddr(0x4020_0000);
        let b = VirtAddr(0x4040_0000); // same PDPT prefix, different PDE prefix
        psc.insert(Pid(1), a, PtLevel::Pd, entry(0x3000));
        psc.insert(Pid(1), b, PtLevel::Pd, entry(0x4000));
        psc.invalidate_page(Pid(1), a);
        assert!(psc.lookup(Pid(1), a).is_none());
        let (_, e) = psc.lookup(Pid(1), b).unwrap();
        assert_eq!(e.table, 0x4000);
    }

    #[test]
    fn flush_pid_isolates_processes() {
        let mut psc = Psc::new(16);
        fill_all_levels(&mut psc, Pid(1), VirtAddr(0x4020_3000));
        fill_all_levels(&mut psc, Pid(2), VirtAddr(0x4020_3000));
        psc.flush_pid(Pid(1));
        assert!(psc.lookup(Pid(1), VirtAddr(0x4020_3000)).is_none());
        assert!(psc.lookup(Pid(2), VirtAddr(0x4020_3000)).is_some());
        assert_eq!(psc.stats().invalidations, 3);
    }

    #[test]
    fn flush_all_counts_one_flush() {
        let mut psc = Psc::new(16);
        fill_all_levels(&mut psc, Pid(1), VirtAddr(0x4020_3000));
        psc.flush_all();
        assert!(psc.is_empty());
        assert_eq!(psc.stats().flushes, 1);
        assert_eq!(psc.stats().invalidations, 0, "full flushes are not invalidations");
    }

    #[test]
    fn hit_rate_and_stat_source() {
        let mut psc = Psc::new(16);
        let va = VirtAddr(0x4020_3000);
        psc.insert(Pid(1), va, PtLevel::Pd, entry(0x3000));
        psc.lookup(Pid(1), va);
        psc.lookup(Pid(1), VirtAddr(0x7700_0000_0000));
        assert!((psc.stats().hit_rate() - 0.5).abs() < 1e-12);
        let mut g = Group::default();
        psc.stats().record(&mut g);
        assert_eq!(g.get_u64("hits"), Some(1));
        assert_eq!(g.get_u64("misses"), Some(1));
        assert_eq!(psc.stats().group(), "psc");
    }
}
