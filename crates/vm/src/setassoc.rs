//! A small generic set-associative cache with tree pseudo-LRU replacement.
//!
//! Shared by the TLB and the paging-structure caches: both are fixed-size
//! hardware-style arrays keyed by `(pid, address-derived key)` where every
//! operation — lookup, fill, single-entry invalidation, and flush-all —
//! must be cheap. Lookup/insert/remove are O(ways); `clear` is O(1) via
//! epoch tagging (slots from an older epoch are dead), which matters
//! because attack loops call `flush_tlb` before every probe and must not
//! pay an O(cache size) sweep each time. The set index is the low key
//! bits, so sequential pages (or table prefixes) spread across sets like a
//! hardware TLB.

use crate::kernel::Pid;

#[derive(Debug, Clone, Copy)]
struct Slot<V> {
    pid: Pid,
    key: u64,
    epoch: u64,
    value: V,
}

/// `sets × ways` array of tagged slots with one tree-PLRU bit vector per set.
#[derive(Debug, Clone)]
pub(crate) struct SetAssoc<V> {
    sets: usize,
    ways: usize,
    epoch: u64,
    slots: Vec<Option<Slot<V>>>,
    plru: Vec<u16>,
    len: usize,
}

impl<V: Copy> SetAssoc<V> {
    /// Builds a cache of at least `capacity` entries: `ways` is
    /// `min(4, capacity)` rounded to a power of two and the set count is the
    /// next power of two covering the rest, so `capacity` is rounded up to
    /// the nearest `sets × ways` geometry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        let ways = capacity.next_power_of_two().min(4);
        let sets = capacity.div_ceil(ways).next_power_of_two();
        SetAssoc {
            sets,
            ways,
            epoch: 0,
            slots: vec![None; sets * ways],
            plru: vec![0; sets],
            len: 0,
        }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn set_of(&self, key: u64) -> usize {
        (key as usize) & (self.sets - 1)
    }

    fn slot_index(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// The slot at `(set, way)` if it holds a current-epoch entry.
    fn live(&self, set: usize, way: usize) -> Option<&Slot<V>> {
        self.slots[self.slot_index(set, way)].as_ref().filter(|s| s.epoch == self.epoch)
    }

    /// Marks `way` most-recently-used: every tree node on the root-to-leaf
    /// path is pointed *away* from it (a set bit sends the victim search
    /// right, a clear bit left).
    fn touch(&mut self, set: usize, way: usize) {
        let (mut lo, mut hi, mut node) = (0usize, self.ways, 0usize);
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            if way >= mid {
                self.plru[set] &= !(1 << node);
                lo = mid;
                node = 2 * node + 2;
            } else {
                self.plru[set] |= 1 << node;
                hi = mid;
                node = 2 * node + 1;
            }
        }
    }

    /// The pseudo-LRU victim way of `set`.
    fn victim(&self, set: usize) -> usize {
        let (mut lo, mut hi, mut node) = (0usize, self.ways, 0usize);
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            if self.plru[set] >> node & 1 == 1 {
                lo = mid;
                node = 2 * node + 2;
            } else {
                hi = mid;
                node = 2 * node + 1;
            }
        }
        lo
    }

    /// Returns the cached value and refreshes its recency.
    pub(crate) fn lookup(&mut self, pid: Pid, key: u64) -> Option<V> {
        if self.len == 0 {
            // Fast miss: right after a flush every probe would scan a set
            // of dead slots — the common state of attack-driven
            // flush-walk-flush loops.
            return None;
        }
        let set = self.set_of(key);
        for way in 0..self.ways {
            if let Some(s) = self.live(set, way) {
                if s.pid == pid && s.key == key {
                    let v = s.value;
                    self.touch(set, way);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Inserts (or overwrites) an entry; a full set evicts its pseudo-LRU
    /// way, never touching other sets. Dead slots (empty, or left over from
    /// before the last `clear`) are filled before anything is evicted.
    pub(crate) fn insert(&mut self, pid: Pid, key: u64, value: V) {
        let set = self.set_of(key);
        let mut target = None;
        for way in 0..self.ways {
            match self.live(set, way) {
                Some(s) if s.pid == pid && s.key == key => {
                    target = Some(way);
                    break;
                }
                None if target.is_none() => target = Some(way),
                _ => {}
            }
        }
        let way = target.unwrap_or_else(|| self.victim(set));
        let idx = self.slot_index(set, way);
        if self.live(set, way).is_none() {
            self.len += 1;
        }
        self.slots[idx] = Some(Slot { pid, key, epoch: self.epoch, value });
        self.touch(set, way);
    }

    /// Drops one entry in O(ways). Returns whether it was present.
    pub(crate) fn remove(&mut self, pid: Pid, key: u64) -> bool {
        let set = self.set_of(key);
        for way in 0..self.ways {
            if matches!(self.live(set, way), Some(s) if s.pid == pid && s.key == key) {
                self.slots[set * self.ways + way] = None;
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Drops every entry of `pid`. Returns how many were dropped.
    pub(crate) fn remove_pid(&mut self, pid: Pid) -> u64 {
        let epoch = self.epoch;
        let mut dropped = 0u64;
        for slot in &mut self.slots {
            if matches!(slot, Some(s) if s.epoch == epoch && s.pid == pid) {
                *slot = None;
                dropped += 1;
            }
        }
        self.len -= dropped as usize;
        dropped
    }

    /// Drops everything in O(1): entries written before the epoch bump are
    /// dead to every other operation and get reused as empty slots.
    pub(crate) fn clear(&mut self) {
        self.epoch += 1;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_rounds_capacity_up() {
        let c: SetAssoc<u64> = SetAssoc::new(64);
        assert_eq!((c.sets, c.ways), (16, 4));
        let c: SetAssoc<u64> = SetAssoc::new(2);
        assert_eq!((c.sets, c.ways), (1, 2));
        let c: SetAssoc<u64> = SetAssoc::new(1);
        assert_eq!((c.sets, c.ways), (1, 1));
        let c: SetAssoc<u64> = SetAssoc::new(5);
        assert_eq!((c.sets, c.ways), (2, 4));
    }

    #[test]
    fn plru_victimizes_least_recently_touched_of_a_full_set() {
        let mut c: SetAssoc<u64> = SetAssoc::new(4); // 1 set × 4 ways
        for k in 0..4u64 {
            c.insert(Pid(1), k * 16, k); // same set (sets == 1)
        }
        // Refresh everything except key 16; it becomes the PLRU victim.
        c.lookup(Pid(1), 0);
        c.lookup(Pid(1), 32);
        c.lookup(Pid(1), 48);
        c.insert(Pid(1), 64, 9);
        assert!(c.lookup(Pid(1), 16).is_none(), "PLRU victim evicted");
        assert_eq!(c.lookup(Pid(1), 64), Some(9));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn remove_and_reinsert_reuse_the_slot() {
        let mut c: SetAssoc<u64> = SetAssoc::new(4);
        c.insert(Pid(1), 7, 1);
        assert!(c.remove(Pid(1), 7));
        assert!(!c.remove(Pid(1), 7));
        assert_eq!(c.len(), 0);
        c.insert(Pid(1), 7, 2);
        assert_eq!(c.lookup(Pid(1), 7), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_pid_spares_other_pids() {
        let mut c: SetAssoc<u64> = SetAssoc::new(8);
        c.insert(Pid(1), 1, 1);
        c.insert(Pid(1), 2, 2);
        c.insert(Pid(2), 1, 3);
        assert_eq!(c.remove_pid(Pid(1)), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(Pid(2), 1), Some(3));
    }

    #[test]
    fn clear_is_an_epoch_bump_that_hides_every_old_entry() {
        let mut c: SetAssoc<u64> = SetAssoc::new(4);
        for k in 0..4u64 {
            c.insert(Pid(1), k * 16, k);
        }
        c.clear();
        assert_eq!(c.len(), 0);
        for k in 0..4u64 {
            assert!(c.lookup(Pid(1), k * 16).is_none(), "entry {k} survived clear");
            assert!(!c.remove(Pid(1), k * 16), "remove found a dead entry");
        }
        assert_eq!(c.remove_pid(Pid(1)), 0, "remove_pid counted dead entries");
        // Dead slots are reused as empty: refilling after clear keeps len
        // exact and the old values never resurface.
        c.insert(Pid(1), 0, 99);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(Pid(1), 0), Some(99));
    }
}
