use std::fmt;

use cta_mem::PtLevel;

/// A canonical x86-64 virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The 9-bit table index this address selects at `level`.
    ///
    /// PML4: bits 39–47, PDPT: 30–38, PD: 21–29, PT: 12–20.
    pub fn index(self, level: PtLevel) -> u64 {
        let shift = match level {
            PtLevel::Pml4 => 39,
            PtLevel::Pdpt => 30,
            PtLevel::Pd => 21,
            PtLevel::Pt => 12,
        };
        (self.0 >> shift) & 0x1FF
    }

    /// Byte offset within a 4 KiB page.
    pub fn page_offset(self) -> u64 {
        self.0 & 0xFFF
    }

    /// Byte offset within the huge page mapped at `level` (2 MiB at PD,
    /// 1 GiB at PDPT).
    pub fn huge_offset(self, level: PtLevel) -> u64 {
        match level {
            PtLevel::Pd => self.0 & 0x1F_FFFF,
            PtLevel::Pdpt => self.0 & 0x3FFF_FFFF,
            _ => self.page_offset(),
        }
    }

    /// The address rounded down to its page base.
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !0xFFF)
    }

    /// The virtual page number.
    pub fn vpn(self) -> u64 {
        self.0 >> 12
    }

    /// The address `bytes` later.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(value: u64) -> Self {
        VirtAddr(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_extraction() {
        // Construct an address with distinct indices per level.
        let va = VirtAddr((1u64 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 0x123);
        assert_eq!(va.index(PtLevel::Pml4), 1);
        assert_eq!(va.index(PtLevel::Pdpt), 2);
        assert_eq!(va.index(PtLevel::Pd), 3);
        assert_eq!(va.index(PtLevel::Pt), 4);
        assert_eq!(va.page_offset(), 0x123);
    }

    #[test]
    fn indices_are_nine_bits() {
        let va = VirtAddr(u64::MAX);
        for level in PtLevel::ALL {
            assert_eq!(va.index(level), 0x1FF);
        }
    }

    #[test]
    fn huge_offsets() {
        let va = VirtAddr(0x4030_2010);
        assert_eq!(va.huge_offset(PtLevel::Pd), 0x4030_2010 & 0x1F_FFFF);
        assert_eq!(va.huge_offset(PtLevel::Pdpt), 0x4030_2010 & 0x3FFF_FFFF);
        assert_eq!(va.huge_offset(PtLevel::Pt), va.page_offset());
    }

    #[test]
    fn page_base_and_vpn() {
        let va = VirtAddr(0x5432);
        assert_eq!(va.page_base(), VirtAddr(0x5000));
        assert_eq!(va.vpn(), 5);
        assert_eq!(va.offset(0x1000).vpn(), 6);
    }
}
