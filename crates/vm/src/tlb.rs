use std::fmt;

use cta_telemetry::{Group, StatSource};

use crate::addr::VirtAddr;
use crate::kernel::Pid;
use crate::setassoc::SetAssoc;

/// A cached translation: physical page base plus the permission summary the
/// walk established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Physical byte address of the page base.
    pub page_base: u64,
    /// The cached walk permitted writes.
    pub writable: bool,
    /// The cached walk permitted user access.
    pub user: bool,
}

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Full flushes (`flush_all`: CR3 reload / invlpg-everything).
    pub flushes: u64,
    /// Single-page invalidations (`flush_page`), counted per invocation —
    /// the paper's Algorithm 1 hammer loop issues one per probe read, so
    /// this is the counter attack telemetry cares about.
    pub page_flushes: u64,
    /// Per-process invalidations (`flush_pid`, context teardown).
    pub pid_flushes: u64,
}

impl TlbStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} flushes={} page_flushes={} pid_flushes={}",
            self.hits, self.misses, self.flushes, self.page_flushes, self.pid_flushes
        )
    }
}

impl StatSource for TlbStats {
    fn group(&self) -> &'static str {
        "tlb"
    }

    fn record(&self, g: &mut Group) {
        g.add_u64("hits", self.hits);
        g.add_u64("misses", self.misses);
        g.add_u64("flushes", self.flushes);
        g.add_u64("page_flushes", self.page_flushes);
        g.add_u64("pid_flushes", self.pid_flushes);
    }
}

/// A fixed-size set-associative TLB keyed by `(pid, virtual page number)`,
/// vpn-indexed with tree pseudo-LRU replacement within each set.
///
/// Every operation is O(ways): `flush_page` in particular probes exactly one
/// set, so the paper's Algorithm 1 loop (one `invlpg` per probe read) never
/// pays an O(cache size) scan the way the earlier FIFO `HashMap` did.
///
/// RowHammer attacks must flush the TLB between hammer reads so every access
/// re-walks the (possibly corrupted) page tables — exactly the `va`-access +
/// TLB-flush loop of the paper's Algorithm 1 step (2).
#[derive(Debug, Clone)]
pub struct Tlb {
    cache: SetAssoc<TlbEntry>,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with at least `capacity` entries (rounded up to a
    /// power-of-two `sets × ways` geometry, at most 4 ways per set).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Tlb { cache: SetAssoc::new(capacity), stats: TlbStats::default() }
    }

    /// Looks up the translation of `va` for `pid`.
    pub fn lookup(&mut self, pid: Pid, va: VirtAddr) -> Option<TlbEntry> {
        match self.cache.lookup(pid, va.vpn()) {
            Some(e) => {
                self.stats.hits += 1;
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a translation, evicting the set's pseudo-LRU entry when the
    /// set is full.
    pub fn insert(&mut self, pid: Pid, va: VirtAddr, entry: TlbEntry) {
        self.cache.insert(pid, va.vpn(), entry);
    }

    /// Drops every cached translation (`invlpg`-everything / CR3 reload).
    pub fn flush_all(&mut self) {
        self.cache.clear();
        self.stats.flushes += 1;
    }

    /// Drops one page's translation. Counted per invocation (like the
    /// `invlpg` instruction), whether or not the page was cached.
    pub fn flush_page(&mut self, pid: Pid, va: VirtAddr) {
        self.stats.page_flushes += 1;
        self.cache.remove(pid, va.vpn());
    }

    /// Drops all translations of one process (context teardown).
    pub fn flush_pid(&mut self, pid: Pid) {
        self.stats.pid_flushes += 1;
        self.cache.remove_pid(pid);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.len() == 0
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(base: u64) -> TlbEntry {
        TlbEntry { page_base: base, writable: true, user: true }
    }

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(Pid(1), VirtAddr(0x1000)).is_none());
        t.insert(Pid(1), VirtAddr(0x1000), e(0x8000));
        assert_eq!(t.lookup(Pid(1), VirtAddr(0x1234)).unwrap().page_base, 0x8000);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn per_pid_isolation() {
        let mut t = Tlb::new(4);
        t.insert(Pid(1), VirtAddr(0x1000), e(0x8000));
        assert!(t.lookup(Pid(2), VirtAddr(0x1000)).is_none());
    }

    #[test]
    fn fifo_eviction() {
        let mut t = Tlb::new(2);
        t.insert(Pid(1), VirtAddr(0x1000), e(1));
        t.insert(Pid(1), VirtAddr(0x2000), e(2));
        t.insert(Pid(1), VirtAddr(0x3000), e(3));
        assert!(t.lookup(Pid(1), VirtAddr(0x1000)).is_none(), "oldest evicted");
        assert!(t.lookup(Pid(1), VirtAddr(0x3000)).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_refreshes_recency() {
        let mut t = Tlb::new(2); // one 2-way set
        t.insert(Pid(1), VirtAddr(0x1000), e(1));
        t.insert(Pid(1), VirtAddr(0x2000), e(2));
        t.lookup(Pid(1), VirtAddr(0x1000)); // 0x1000 becomes MRU
        t.insert(Pid(1), VirtAddr(0x3000), e(3)); // evicts 0x2000, not 0x1000
        assert!(t.lookup(Pid(1), VirtAddr(0x1000)).is_some());
        assert!(t.lookup(Pid(1), VirtAddr(0x2000)).is_none());
    }

    #[test]
    fn eviction_is_per_set_not_global() {
        let mut t = Tlb::new(64); // 16 sets × 4 ways
                                  // Five pages that all land in set 0 (vpn ≡ 0 mod 16) fight over
                                  // that set's 4 ways; a page in set 1 is untouched.
        t.insert(Pid(1), VirtAddr(0x1000), e(99));
        for i in 0..5u64 {
            t.insert(Pid(1), VirtAddr(i * 16 * 0x1000), e(i));
        }
        assert_eq!(t.len(), 5, "4 survivors in set 0 plus the set-1 entry");
        assert!(t.lookup(Pid(1), VirtAddr(0x1000)).is_some());
    }

    #[test]
    fn flushes() {
        let mut t = Tlb::new(8);
        t.insert(Pid(1), VirtAddr(0x1000), e(1));
        t.insert(Pid(1), VirtAddr(0x2000), e(2));
        t.insert(Pid(2), VirtAddr(0x1000), e(3));
        t.flush_page(Pid(1), VirtAddr(0x1000));
        assert!(t.lookup(Pid(1), VirtAddr(0x1000)).is_none());
        t.flush_pid(Pid(1));
        assert!(t.lookup(Pid(1), VirtAddr(0x2000)).is_none());
        assert!(t.lookup(Pid(2), VirtAddr(0x1000)).is_some());
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats().flushes, 1);
        assert_eq!(t.stats().page_flushes, 1);
        assert_eq!(t.stats().pid_flushes, 1);
    }

    #[test]
    fn page_flush_counts_invocations_even_when_uncached() {
        let mut t = Tlb::new(4);
        t.flush_page(Pid(1), VirtAddr(0x1000));
        t.flush_page(Pid(1), VirtAddr(0x1000));
        assert_eq!(t.stats().page_flushes, 2);
        assert_eq!(t.stats().flushes, 0, "full-flush counter untouched");
    }

    #[test]
    fn flush_page_leaves_no_stale_entries() {
        // Regression test for the O(n) `order.retain` era: per-page flushes
        // must actually drop the entry (no stale survivors), at O(ways) cost.
        let mut t = Tlb::new(64);
        let vas: Vec<VirtAddr> = (0..256).map(|i| VirtAddr(i * 0x1000)).collect();
        for va in &vas {
            t.insert(Pid(1), *va, e(va.0));
        }
        for va in &vas {
            t.flush_page(Pid(1), *va);
        }
        assert_eq!(t.len(), 0, "no stale entries survive per-page flushes");
        assert!(t.is_empty());
        let misses_before = t.stats().misses;
        for va in &vas {
            assert!(t.lookup(Pid(1), *va).is_none());
        }
        assert_eq!(t.stats().misses, misses_before + 256);
    }

    #[test]
    fn reinsert_same_key_does_not_grow() {
        let mut t = Tlb::new(2);
        t.insert(Pid(1), VirtAddr(0x1000), e(1));
        t.insert(Pid(1), VirtAddr(0x1000), e(9));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Pid(1), VirtAddr(0x1000)).unwrap().page_base, 9);
    }

    #[test]
    fn hit_rate() {
        let mut t = Tlb::new(2);
        assert_eq!(t.stats().hit_rate(), 0.0);
        t.insert(Pid(1), VirtAddr(0), e(1));
        t.lookup(Pid(1), VirtAddr(0));
        t.lookup(Pid(1), VirtAddr(0x100000));
        assert!((t.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
