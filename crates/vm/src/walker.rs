use cta_dram::DramModule;
use cta_mem::{PtLevel, PAGE_SIZE};

use crate::addr::VirtAddr;
use crate::error::{TranslateError, VmError};
use crate::pte::Pte;

/// The kind of memory access a walk is performed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The access writes memory.
    pub write: bool,
    /// The access executes in user mode.
    pub user: bool,
}

impl Access {
    /// User-mode read.
    pub fn user_read() -> Self {
        Access { write: false, user: true }
    }

    /// User-mode write.
    pub fn user_write() -> Self {
        Access { write: true, user: true }
    }

    /// Kernel-mode read.
    pub fn kernel_read() -> Self {
        Access { write: false, user: false }
    }

    /// Kernel-mode write.
    pub fn kernel_write() -> Self {
        Access { write: true, user: false }
    }
}

/// Result of a successful walk: the physical address plus which entries the
/// hardware consulted (useful for experiments that want to show *why* a
/// translation changed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResult {
    /// The translated physical byte address.
    pub phys: u64,
    /// `(level, entry physical address, entry value)` from root to leaf.
    pub trail: Vec<(PtLevel, u64, Pte)>,
}

/// Where [`Walker::walk_phys`] begins: either the CR3 root or, after a
/// paging-structure-cache hit, a table deeper in the hierarchy with the
/// cached summary of the permissions granted by the skipped levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStart {
    /// First level whose entry the walk reads.
    pub level: PtLevel,
    /// Physical byte address of that level's table.
    pub table: u64,
    /// Every skipped level above `level` granted user access (vacuously
    /// true at CR3).
    pub user: bool,
    /// Every skipped level above `level` granted writes (vacuously true at
    /// CR3).
    pub writable: bool,
}

impl WalkStart {
    /// A full walk from the CR3 root.
    pub fn root(cr3: u64) -> Self {
        WalkStart { level: PtLevel::Pml4, table: cr3, user: true, writable: true }
    }
}

/// Result of an allocation-free walk: the leaf plus the non-leaf entries
/// read on the way down (for paging-structure-cache fills), with no heap
/// trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysWalk {
    /// The translated physical byte address.
    pub phys: u64,
    /// The leaf entry (a PT entry, or a huge PD/PDPT entry).
    pub leaf: Pte,
    /// The level the leaf was found at.
    pub leaf_level: PtLevel,
    /// Non-leaf entries actually read, root-most first; levels skipped by a
    /// [`WalkStart`] resume are absent. Huge leaves never appear here.
    pub intermediates: [Option<(PtLevel, Pte)>; 3],
}

/// The software MMU: a 4-level x86-64 page-table walk over simulated DRAM.
///
/// Walks read each entry with an ordinary DRAM read — page tables have no
/// shadow copy, so disturbance-corrupted entries take effect exactly as they
/// would in hardware. Permission semantics follow x86: an access is allowed
/// only if *every* level grants it (here simplified to checking user/write
/// on each present entry).
#[derive(Debug, Clone, Copy, Default)]
pub struct Walker;

impl Walker {
    /// Creates a walker.
    pub fn new() -> Self {
        Walker
    }

    /// Translates `va` through the hierarchy rooted at physical `cr3`.
    ///
    /// # Errors
    ///
    /// [`VmError::Translate`] on faults; [`VmError::Dram`] only if the walk
    /// itself reads outside the module (a corrupted intermediate entry),
    /// which is reported as [`TranslateError::BadFrame`].
    pub fn walk(
        &self,
        dram: &mut DramModule,
        cr3: u64,
        va: VirtAddr,
        access: Access,
    ) -> Result<WalkResult, VmError> {
        let capacity = dram.capacity_bytes();
        let mut table = cr3;
        let mut trail = Vec::with_capacity(4);
        for level in [PtLevel::Pml4, PtLevel::Pdpt, PtLevel::Pd, PtLevel::Pt] {
            let entry_addr = table + va.index(level) * 8;
            if entry_addr + 8 > capacity {
                return Err(TranslateError::BadFrame { va, level, pfn: table / PAGE_SIZE }.into());
            }
            let pte = Pte(dram.read_u64(entry_addr)?);
            trail.push((level, entry_addr, pte));
            if !pte.present() {
                return Err(TranslateError::NotPresent { va, level }.into());
            }
            if access.user && !pte.user() {
                return Err(TranslateError::Protection {
                    va,
                    level,
                    write: access.write,
                    user: access.user,
                }
                .into());
            }
            if access.write && !pte.writable() {
                return Err(TranslateError::Protection {
                    va,
                    level,
                    write: access.write,
                    user: access.user,
                }
                .into());
            }
            let target = pte.pfn().0 * PAGE_SIZE;
            let is_leaf = level == PtLevel::Pt
                || (pte.huge() && matches!(level, PtLevel::Pd | PtLevel::Pdpt));
            if is_leaf {
                let phys = target + va.huge_offset(level);
                if phys >= capacity {
                    return Err(TranslateError::BadFrame { va, level, pfn: pte.pfn().0 }.into());
                }
                return Ok(WalkResult { phys, trail });
            }
            if target + PAGE_SIZE > capacity {
                return Err(TranslateError::BadFrame { va, level, pfn: pte.pfn().0 }.into());
            }
            table = target;
        }
        unreachable!("the PT level always terminates the loop");
    }

    /// The allocation-free hot-path walk: translates `va` starting from
    /// `start` (the CR3 root, or a paging-structure-cache resume point)
    /// without building a trail `Vec`.
    ///
    /// From [`WalkStart::root`] this reads exactly the same DRAM sequence as
    /// [`walk`](Walker::walk) and enforces the same per-level permission
    /// checks; a mid-hierarchy `start` additionally checks the access
    /// against the cached permission summary of the skipped levels.
    ///
    /// # Errors
    ///
    /// Same contract as [`walk`](Walker::walk); a denial by the skipped
    /// levels' summary is reported as a [`TranslateError::Protection`] at
    /// `start.level`.
    pub fn walk_phys(
        &self,
        dram: &mut DramModule,
        start: WalkStart,
        va: VirtAddr,
        access: Access,
    ) -> Result<PhysWalk, VmError> {
        if (access.user && !start.user) || (access.write && !start.writable) {
            return Err(TranslateError::Protection {
                va,
                level: start.level,
                write: access.write,
                user: access.user,
            }
            .into());
        }
        let capacity = dram.capacity_bytes();
        let mut table = start.table;
        let mut intermediates: [Option<(PtLevel, Pte)>; 3] = [None; 3];
        let levels: &[PtLevel] = match start.level {
            PtLevel::Pml4 => &[PtLevel::Pml4, PtLevel::Pdpt, PtLevel::Pd, PtLevel::Pt],
            PtLevel::Pdpt => &[PtLevel::Pdpt, PtLevel::Pd, PtLevel::Pt],
            PtLevel::Pd => &[PtLevel::Pd, PtLevel::Pt],
            PtLevel::Pt => &[PtLevel::Pt],
        };
        for (filled, &level) in levels.iter().enumerate() {
            let entry_addr = table + va.index(level) * 8;
            if entry_addr + 8 > capacity {
                return Err(TranslateError::BadFrame { va, level, pfn: table / PAGE_SIZE }.into());
            }
            let pte = Pte(dram.read_u64(entry_addr)?);
            if !pte.present() {
                return Err(TranslateError::NotPresent { va, level }.into());
            }
            if (access.user && !pte.user()) || (access.write && !pte.writable()) {
                return Err(TranslateError::Protection {
                    va,
                    level,
                    write: access.write,
                    user: access.user,
                }
                .into());
            }
            let target = pte.pfn().0 * PAGE_SIZE;
            let is_leaf = level == PtLevel::Pt
                || (pte.huge() && matches!(level, PtLevel::Pd | PtLevel::Pdpt));
            if is_leaf {
                let phys = target + va.huge_offset(level);
                if phys >= capacity {
                    return Err(TranslateError::BadFrame { va, level, pfn: pte.pfn().0 }.into());
                }
                return Ok(PhysWalk { phys, leaf: pte, leaf_level: level, intermediates });
            }
            if target + PAGE_SIZE > capacity {
                return Err(TranslateError::BadFrame { va, level, pfn: pte.pfn().0 }.into());
            }
            intermediates[filled] = Some((level, pte));
            table = target;
        }
        unreachable!("the PT level always terminates the loop");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::PteFlags;
    use cta_dram::DramConfig;
    use cta_mem::Pfn;

    /// Hand-builds a 4-level hierarchy in DRAM mapping `va` → `frame`.
    fn build_mapping(dram: &mut DramModule, cr3: u64, va: VirtAddr, frame: Pfn, flags: PteFlags) {
        let mut table = cr3;
        for level in [PtLevel::Pml4, PtLevel::Pdpt, PtLevel::Pd] {
            let entry_addr = table + va.index(level) * 8;
            let existing = Pte(dram.peek_u64(entry_addr).unwrap());
            let next = if existing.present() {
                existing.pfn().0 * PAGE_SIZE
            } else {
                let next = table + 0x4000; // park tables 4 pages apart
                dram.write_u64(entry_addr, Pte::new(Pfn(next / PAGE_SIZE), PteFlags::table()).0)
                    .unwrap();
                next
            };
            table = next;
        }
        let leaf_addr = table + va.index(PtLevel::Pt) * 8;
        dram.write_u64(leaf_addr, Pte::new(frame, flags).0).unwrap();
    }

    fn setup() -> (DramModule, u64) {
        (DramModule::new(DramConfig::small_test()), 0x1000)
    }

    #[test]
    fn walk_resolves_built_mapping() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x1234_5678);
        build_mapping(&mut dram, cr3, va, Pfn(40), PteFlags::user_data());
        let r = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        assert_eq!(r.phys, 40 * PAGE_SIZE + va.page_offset());
        assert_eq!(r.trail.len(), 4);
        assert_eq!(r.trail[3].0, PtLevel::Pt);
    }

    #[test]
    fn walk_faults_on_missing_entry() {
        let (mut dram, cr3) = setup();
        let err = Walker::new().walk(&mut dram, cr3, VirtAddr(0x9999), Access::user_read());
        assert!(matches!(
            err,
            Err(VmError::Translate(TranslateError::NotPresent { level: PtLevel::Pml4, .. }))
        ));
    }

    #[test]
    fn user_cannot_touch_kernel_pages() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x5000);
        build_mapping(&mut dram, cr3, va, Pfn(41), PteFlags::kernel_data());
        let err = Walker::new().walk(&mut dram, cr3, va, Access::user_read());
        assert!(matches!(
            err,
            Err(VmError::Translate(TranslateError::Protection { user: true, .. }))
        ));
        // Kernel access succeeds.
        Walker::new().walk(&mut dram, cr3, va, Access::kernel_write()).unwrap();
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x7000);
        build_mapping(&mut dram, cr3, va, Pfn(42), PteFlags::user_readonly());
        Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        let err = Walker::new().walk(&mut dram, cr3, va, Access::user_write());
        assert!(matches!(
            err,
            Err(VmError::Translate(TranslateError::Protection { write: true, .. }))
        ));
    }

    #[test]
    fn corrupted_entry_to_out_of_range_frame_is_bad_frame() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0xA000);
        build_mapping(&mut dram, cr3, va, Pfn(1 << 30), PteFlags::user_data());
        let err = Walker::new().walk(&mut dram, cr3, va, Access::user_read());
        assert!(matches!(err, Err(VmError::Translate(TranslateError::BadFrame { .. }))));
    }

    #[test]
    fn huge_page_terminates_at_pd() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x40_0000 + 0x1234); // PD index 2, offset 0x1234
                                               // Build PML4 + PDPT, then a huge PD entry.
        let mut table = cr3;
        for level in [PtLevel::Pml4, PtLevel::Pdpt] {
            let entry_addr = table + va.index(level) * 8;
            let next = table + 0x4000;
            dram.write_u64(entry_addr, Pte::new(Pfn(next / PAGE_SIZE), PteFlags::table()).0)
                .unwrap();
            table = next;
        }
        let pd_entry = table + va.index(PtLevel::Pd) * 8;
        let flags = PteFlags { huge: true, ..PteFlags::user_data() };
        dram.write_u64(pd_entry, Pte::new(Pfn(0), flags).0).unwrap();
        let r = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        assert_eq!(r.phys, va.huge_offset(PtLevel::Pd));
        assert_eq!(r.trail.len(), 3, "walk stops at the huge PD entry");
    }

    #[test]
    fn walk_reads_live_dram_so_corruption_changes_translation() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0xB000);
        build_mapping(&mut dram, cr3, va, Pfn(43), PteFlags::user_data());
        let r1 = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        // Corrupt the leaf PTE directly in DRAM (simulating a bit flip).
        let (_, leaf_addr, leaf) = r1.trail[3];
        dram.write_u64(leaf_addr, leaf.with_pfn(Pfn(7)).0).unwrap();
        let r2 = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        assert_eq!(r2.phys, 7 * PAGE_SIZE + va.page_offset());
        assert_ne!(r1.phys, r2.phys);
        // Now corrupt the *PDE*: redirect the region's page table wholesale
        // to a hand-crafted one. The walker caches nothing, so the very next
        // walk follows the flipped pointer.
        let (_, pde_addr, pde) = r2.trail[2];
        let fake_pt = 0x3C000u64;
        dram.write_u64(
            fake_pt + va.index(PtLevel::Pt) * 8,
            Pte::new(Pfn(9), PteFlags::user_data()).0,
        )
        .unwrap();
        dram.write_u64(pde_addr, pde.with_pfn(Pfn(fake_pt / PAGE_SIZE)).0).unwrap();
        let r3 = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        assert_eq!(r3.phys, 9 * PAGE_SIZE + va.page_offset());
    }

    #[test]
    fn walk_phys_matches_walk_from_root() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x1234_5678);
        build_mapping(&mut dram, cr3, va, Pfn(40), PteFlags::user_data());
        let r = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        let p = Walker::new()
            .walk_phys(&mut dram, WalkStart::root(cr3), va, Access::user_read())
            .unwrap();
        assert_eq!(p.phys, r.phys);
        assert_eq!(p.leaf, r.trail[3].2);
        assert_eq!(p.leaf_level, PtLevel::Pt);
        let inter: Vec<(PtLevel, Pte)> = p.intermediates.into_iter().flatten().collect();
        let trail_inter: Vec<(PtLevel, Pte)> =
            r.trail[..3].iter().map(|&(l, _, e)| (l, e)).collect();
        assert_eq!(inter, trail_inter);
    }

    #[test]
    fn walk_phys_resumes_mid_hierarchy() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x1234_5678);
        build_mapping(&mut dram, cr3, va, Pfn(40), PteFlags::user_data());
        let r = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        // Resume at the PD table (the PDPT entry's target), as a PDPTE-cache
        // hit would.
        let pd_table = r.trail[1].2.pfn().0 * PAGE_SIZE;
        let start = WalkStart { level: PtLevel::Pd, table: pd_table, user: true, writable: true };
        let reads_before = dram.stats().reads;
        let p = Walker::new().walk_phys(&mut dram, start, va, Access::user_read()).unwrap();
        assert_eq!(dram.stats().reads - reads_before, 2, "only the PDE and the leaf are read");
        assert_eq!(p.phys, r.phys);
        let inter: Vec<(PtLevel, Pte)> = p.intermediates.into_iter().flatten().collect();
        assert_eq!(inter, vec![(PtLevel::Pd, r.trail[2].2)], "skipped levels are absent");
    }

    #[test]
    fn walk_phys_enforces_the_skipped_levels_permission_summary() {
        let (mut dram, cr3) = setup();
        let va = VirtAddr(0x1234_5678);
        build_mapping(&mut dram, cr3, va, Pfn(40), PteFlags::user_data());
        let r = Walker::new().walk(&mut dram, cr3, va, Access::user_read()).unwrap();
        let pd_table = r.trail[1].2.pfn().0 * PAGE_SIZE;
        // A cached summary that denies user access must fault before any
        // DRAM read, as if an upper level had denied it.
        let start = WalkStart { level: PtLevel::Pd, table: pd_table, user: false, writable: true };
        let err = Walker::new().walk_phys(&mut dram, start, va, Access::user_read());
        assert!(matches!(
            err,
            Err(VmError::Translate(TranslateError::Protection {
                level: PtLevel::Pd,
                user: true,
                ..
            }))
        ));
    }
}
