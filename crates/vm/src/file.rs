use std::fmt;

use cta_mem::Pfn;

/// Identifier of a kernel file object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// A shared, page-backed file object.
///
/// This is the spray primitive of the Project Zero attack (Figure 3): a
/// process `mmap`s one file at *many* virtual addresses, forcing the kernel
/// to build many page tables that all point at the same physical frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileObject {
    id: FileId,
    frames: Vec<Pfn>,
    mapping_count: u64,
}

impl FileObject {
    pub(crate) fn new(id: FileId, frames: Vec<Pfn>) -> Self {
        FileObject { id, frames, mapping_count: 0 }
    }

    /// The file's identifier.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The physical frames backing the file, in page order.
    pub fn frames(&self) -> &[Pfn] {
        &self.frames
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.frames.len() as u64 * cta_mem::PAGE_SIZE
    }

    /// How many live mappings reference the file.
    pub fn mapping_count(&self) -> u64 {
        self.mapping_count
    }

    pub(crate) fn add_mapping(&mut self) {
        self.mapping_count += 1;
    }

    pub(crate) fn remove_mapping(&mut self) {
        self.mapping_count = self.mapping_count.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_accounting() {
        let mut f = FileObject::new(FileId(1), vec![Pfn(10), Pfn(11)]);
        assert_eq!(f.len_bytes(), 2 * cta_mem::PAGE_SIZE);
        assert_eq!(f.mapping_count(), 0);
        f.add_mapping();
        f.add_mapping();
        f.remove_mapping();
        assert_eq!(f.mapping_count(), 1);
        assert_eq!(f.id().to_string(), "file#1");
    }
}
