use std::collections::{BTreeMap, HashMap};
use std::fmt;

use cta_dram::{profile_cell_types, CellTypeMap, DramConfig, DramModule, ProfilerConfig, RowId};
use cta_mem::{GfpFlags, MemoryMap, Pfn, PtLevel, PtpLayout, PtpSpec, ZonedAllocator, PAGE_SIZE};

use crate::addr::VirtAddr;
use crate::error::VmError;
use crate::file::{FileId, FileObject};
use crate::psc::{Psc, PscEntry};
use crate::pte::{Pte, PteFlags};
use crate::tlb::{Tlb, TlbEntry};
use crate::walker::{Access, WalkStart, Walker};

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid#{}", self.0)
    }
}

/// Who owns a physical frame — the ground truth the exploit checker uses to
/// decide whether an attacker escaped its sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOwner {
    /// Kernel-private data.
    Kernel,
    /// A page-table page of some process.
    PageTable {
        /// Owning process.
        pid: Pid,
        /// Which level of the hierarchy the page serves.
        level: PtLevel,
    },
    /// An anonymous user page.
    Anonymous {
        /// Owning process.
        pid: Pid,
    },
    /// A page backing a file object.
    File {
        /// The file.
        id: FileId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MappingKind {
    Anonymous {
        pfn: Pfn,
    },
    File {
        id: FileId,
        page_index: usize,
    },
    /// A kernel-owned frame mapped into user space (double-owned page,
    /// e.g. a video buffer — the CATT bypass of section 2.5).
    SharedKernel {
        pfn: Pfn,
    },
}

/// Size of a huge (PD-level) page: 2 MiB.
pub const HUGE_PAGE_SIZE: u64 = 2 << 20;

/// A user process: its page-table root and mapping bookkeeping.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    trusted: bool,
    cr3: Pfn,
    mappings: BTreeMap<u64, MappingKind>,
    huge_mappings: BTreeMap<u64, Pfn>,
    pt_pages: Vec<(Pfn, PtLevel)>,
}

impl Process {
    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Whether the process is trusted (may receive trusted-stripe frames).
    pub fn trusted(&self) -> bool {
        self.trusted
    }

    /// Physical frame of the PML4 root.
    pub fn cr3(&self) -> Pfn {
        self.cr3
    }

    /// Page-table pages owned by the process, with their levels.
    pub fn pt_pages(&self) -> &[(Pfn, PtLevel)] {
        &self.pt_pages
    }

    /// Number of live 4 KiB page mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Number of live 2 MiB huge mappings.
    pub fn huge_mapping_count(&self) -> usize {
        self.huge_mappings.len()
    }

    /// Virtual bases of the live huge mappings.
    pub fn huge_mapped_bases(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.huge_mappings.keys().map(|va| VirtAddr(*va))
    }

    /// Virtual page bases currently mapped.
    pub fn mapped_pages(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.mappings.keys().map(|va| VirtAddr(*va))
    }
}

/// One page-table entry found by [`Kernel::iter_pt_entries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteRecord {
    /// Hierarchy level of the table holding the entry.
    pub level: PtLevel,
    /// Frame of the table page.
    pub table: Pfn,
    /// Physical byte address of the entry itself.
    pub entry_addr: u64,
    /// The entry's current value (read without disturbing the simulation).
    pub pte: Pte,
}

/// Kernel-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Page-table pages allocated via `pte_alloc`.
    pub pt_pages_allocated: u64,
    /// User data pages allocated.
    pub user_pages_allocated: u64,
    /// Leaf mappings installed.
    pub maps: u64,
    /// Leaf mappings removed.
    pub unmaps: u64,
    /// Page-table walks performed (TLB misses).
    pub walks: u64,
}

impl cta_telemetry::StatSource for KernelStats {
    fn group(&self) -> &'static str {
        "kernel"
    }

    fn record(&self, g: &mut cta_telemetry::Group) {
        g.add_u64("pt_pages_allocated", self.pt_pages_allocated);
        g.add_u64("user_pages_allocated", self.user_pages_allocated);
        g.add_u64("maps", self.maps);
        g.add_u64("unmaps", self.unmaps);
        g.add_u64("walks", self.walks);
    }
}

/// Configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// The DRAM module to boot on.
    pub dram: DramConfig,
    /// Enable CTA with this `ZONE_PTP` spec (None = stock kernel).
    pub cta: Option<PtpSpec>,
    /// Identify cell types with the boot-time profiler (section 2.2) instead
    /// of consulting the module's ground truth. Slower, but exercises the
    /// full system path.
    pub profile_cells: bool,
    /// TLB capacity in entries.
    pub tlb_entries: usize,
    /// Per-level paging-structure-cache capacity in entries (the PML4E,
    /// PDPTE, and PDE caches each hold this many); 0 disables the PSC so a
    /// TLB miss always walks from CR3.
    pub psc_entries: usize,
    /// Override the cell-type map used for `ZONE_PTP` construction — for
    /// misconfiguration experiments such as the paper's anti-cell-only
    /// baseline (section 5). `None` uses the profiler or ground truth.
    pub cell_map_override: Option<CellTypeMap>,
    /// Apply the section 7 page-size-bit screen at boot: frames with
    /// vulnerable PS-bit cells are excluded from the high-level-table
    /// sub-zones of `ZONE_PTP`.
    pub screen_ps_bit: bool,
    /// Use an externally constructed memory map instead of deriving one —
    /// how a hypervisor hands a guest its assigned `ZONE_PTP` slice
    /// (section 7). Takes precedence over `cta`.
    pub memory_map_override: Option<MemoryMap>,
}

impl KernelConfig {
    /// A small machine for tests: 8 MiB of DRAM in 4 KiB rows (one page per
    /// row), cell types alternating every 64 rows, no CTA.
    pub fn small_test() -> Self {
        use cta_dram::{AddressMapping, CellLayout, CellType, DisturbanceParams, DramGeometry};
        let geometry = DramGeometry::new(4096, 2048, 1, AddressMapping::RowLinear);
        let dram = DramConfig {
            geometry,
            layout: CellLayout::Alternating { period_rows: 64, first: CellType::True },
            disturbance: DisturbanceParams { pf: 0.02, ..DisturbanceParams::default() },
            retention: cta_dram::RetentionParams::default(),
            refresh_interval_ns: 64_000_000,
            seed: 0xBEEF,
            backend: cta_dram::StoreBackend::default(),
            flip_engine: cta_dram::FlipEngine::default(),
            map_gen: cta_dram::MapGen::default(),
        };
        KernelConfig {
            dram,
            cta: None,
            profile_cells: false,
            tlb_entries: 64,
            psc_entries: 16,
            cell_map_override: None,
            screen_ps_bit: false,
            memory_map_override: None,
        }
    }

    /// The small test machine with CTA enabled (256 KiB `ZONE_PTP`).
    pub fn small_test_cta() -> Self {
        KernelConfig {
            cta: Some(PtpSpec::paper_default().with_size(256 * 1024)),
            ..Self::small_test()
        }
    }

    /// Builder-style CTA override.
    pub fn with_cta(mut self, spec: PtpSpec) -> Self {
        self.cta = Some(spec);
        self
    }

    /// Builder-style DRAM row-store backend override.
    pub fn with_backend(mut self, backend: cta_dram::StoreBackend) -> Self {
        self.dram.backend = backend;
        self
    }
}

/// The miniature operating system tying DRAM, the zoned allocator, and the
/// MMU together.
///
/// The kernel's `pte_alloc` is the site of the paper's 18-line patch: with
/// CTA enabled every page-table page is requested with `__GFP_PTP` and thus
/// lands in a true-cell sub-zone above the low water mark; without CTA the
/// request is ordinary `GFP_KERNEL` and page tables mix freely with data —
/// the precondition of every PTE-based privilege-escalation attack.
pub struct Kernel {
    dram: DramModule,
    alloc: ZonedAllocator,
    walker: Walker,
    tlb: Tlb,
    psc: Psc,
    processes: BTreeMap<u64, Process>,
    files: BTreeMap<u64, FileObject>,
    owners: HashMap<u64, FrameOwner>,
    next_pid: u64,
    next_file: u64,
    stats: KernelStats,
    multi_level: bool,
    secret: Option<(Pfn, [u8; 16])>,
    /// Active undo journal, if a trial is running in place on this kernel
    /// (see [`Self::journal_begin`]). `None` outside journaled trials.
    journal: Option<Box<KernelJournal>>,
}

/// Snapshot of every kernel-side plane a journaled trial may mutate. The
/// DRAM module journals itself (row pre-images plus metadata snapshots,
/// see `cta_dram`'s journal); this struct covers the seams above it: PTE
/// stores land in DRAM rows (journaled there), but the allocator's
/// free-lists, the TLB/PSC arrays, and the process/file/owner maps live
/// outside DRAM and must be restored exactly — they are all O(machine
/// metadata), orders of magnitude smaller than the row contents a fork
/// would deep-copy.
struct KernelJournal {
    alloc: ZonedAllocator,
    walker: Walker,
    tlb: Tlb,
    psc: Psc,
    processes: BTreeMap<u64, Process>,
    files: BTreeMap<u64, FileObject>,
    owners: HashMap<u64, FrameOwner>,
    next_pid: u64,
    next_file: u64,
    stats: KernelStats,
    secret: Option<(Pfn, [u8; 16])>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("processes", &self.processes.len())
            .field("files", &self.files.len())
            .field("cta", &self.alloc.cta_enabled())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Kernel {
    /// Boots a machine: builds the DRAM module, (optionally) profiles cell
    /// types, lays out zones, and initializes the allocator.
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors from profiling and allocation errors from an
    /// infeasible `ZONE_PTP` spec.
    pub fn new(config: KernelConfig) -> Result<Self, VmError> {
        let mut dram = DramModule::new(config.dram.clone());
        let total_bytes = dram.capacity_bytes();
        let map = if let Some(map) = config.memory_map_override.clone() {
            assert_eq!(
                map.total_bytes(),
                total_bytes,
                "memory map override must match DRAM capacity"
            );
            map
        } else {
            match &config.cta {
                None => MemoryMap::x86_64(total_bytes),
                Some(spec) => {
                    let cells: CellTypeMap = if let Some(map) = config.cell_map_override.clone() {
                        map
                    } else if config.profile_cells {
                        profile_cell_types(&mut dram, &ProfilerConfig::default())?.map
                    } else {
                        dram.ground_truth_cell_map()
                    };
                    let mut layout = PtpLayout::build(&cells, total_bytes, spec)?;
                    if config.screen_ps_bit {
                        let screened = cta_mem::screen_page_size_bit(&mut dram, &layout)?;
                        layout = layout.with_screened_pages(&screened);
                    }
                    MemoryMap::x86_64(total_bytes).with_cta(layout)
                }
            }
        };
        let multi_level = config.cta.as_ref().map(|s| s.multi_level).unwrap_or(false);
        let mut kernel = Kernel {
            dram,
            alloc: ZonedAllocator::new(map),
            walker: Walker::new(),
            tlb: Tlb::new(config.tlb_entries),
            psc: Psc::new(config.psc_entries),
            processes: BTreeMap::new(),
            files: BTreeMap::new(),
            owners: HashMap::new(),
            next_pid: 1,
            next_file: 1,
            stats: KernelStats::default(),
            multi_level,
            secret: None,
            journal: None,
        };
        // Reserve the zero frame so that pfn 0 never appears in a PTE, and
        // plant the kernel secret used to verify privilege escalation.
        let zero = kernel.alloc.alloc_page(GfpFlags::KERNEL)?;
        kernel.owners.insert(zero.0, FrameOwner::Kernel);
        let secret_pfn = kernel.alloc.alloc_page(GfpFlags::KERNEL)?;
        kernel.owners.insert(secret_pfn.0, FrameOwner::Kernel);
        let pattern = *b"KERNEL-SECRET-#1";
        kernel.dram.write(secret_pfn.addr().0, &pattern)?;
        kernel.secret = Some((secret_pfn, pattern));
        Ok(kernel)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The DRAM module (experimenter oracle — simulated software cannot see
    /// this).
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Mutable DRAM access, for driving hammer primitives and fault
    /// injection from attack/experiment code.
    pub fn dram_mut(&mut self) -> &mut DramModule {
        &mut self.dram
    }

    /// Forks the machine: an independent snapshot with identical DRAM
    /// contents, page tables, processes, TLB, allocator, and statistics.
    /// Nothing done to either side is ever visible to the other.
    ///
    /// Forking a freshly booted kernel is indistinguishable from booting a
    /// second one with the same [`KernelConfig`] — the substrate of
    /// boot-once/fork-per-trial campaigns. With the
    /// [`cta_dram::StoreBackend::Cow`] backend the DRAM snapshot is
    /// copy-on-write, so a fork costs O(materialized rows) reference bumps
    /// and each trial pays only for the rows it actually changes; other
    /// backends deep-copy the module.
    pub fn fork(&self) -> Kernel {
        Kernel {
            dram: self.dram.fork(),
            alloc: self.alloc.clone(),
            walker: self.walker,
            tlb: self.tlb.clone(),
            psc: self.psc.clone(),
            processes: self.processes.clone(),
            files: self.files.clone(),
            owners: self.owners.clone(),
            next_pid: self.next_pid,
            next_file: self.next_file,
            stats: self.stats,
            multi_level: self.multi_level,
            secret: self.secret,
            journal: None,
        }
    }

    // ------------------------------------------------------------------
    // Undo journal
    // ------------------------------------------------------------------

    /// Starts an undo journal so a trial can run **in place** on this
    /// kernel and be rolled back with [`Self::journal_rollback`] instead
    /// of paying a full [`Self::fork`] per trial. The DRAM module journals
    /// its own planes (row pre-images captured on first touch, metadata
    /// snapshots); this layer snapshots the allocator, TLB, page-structure
    /// cache, and the process/file/owner maps — O(machine metadata), not
    /// O(machine memory).
    ///
    /// # Panics
    ///
    /// Panics if a journal is already active (journals do not nest).
    pub fn journal_begin(&mut self) {
        assert!(self.journal.is_none(), "kernel journal already active");
        self.dram.journal_begin();
        self.journal = Some(Box::new(KernelJournal {
            alloc: self.alloc.clone(),
            walker: self.walker,
            tlb: self.tlb.clone(),
            psc: self.psc.clone(),
            processes: self.processes.clone(),
            files: self.files.clone(),
            owners: self.owners.clone(),
            next_pid: self.next_pid,
            next_file: self.next_file,
            stats: self.stats,
            secret: self.secret,
        }));
    }

    /// Rolls the kernel back to its [`Self::journal_begin`] state:
    /// byte-identical DRAM (contents, charge plane, caches, clock, flip
    /// log), exact allocator free-lists, TLB/PSC arrays, and metadata
    /// maps. A rolled-back kernel is indistinguishable from a fresh fork
    /// of the pre-journal parent.
    ///
    /// # Panics
    ///
    /// Panics if no journal is active.
    pub fn journal_rollback(&mut self) {
        let j = *self.journal.take().expect("journal_rollback without journal_begin");
        self.dram.journal_rollback();
        self.alloc = j.alloc;
        self.walker = j.walker;
        self.tlb = j.tlb;
        self.psc = j.psc;
        self.processes = j.processes;
        self.files = j.files;
        self.owners = j.owners;
        self.next_pid = j.next_pid;
        self.next_file = j.next_file;
        self.stats = j.stats;
        self.secret = j.secret;
    }

    /// Whether an undo journal is currently active on this kernel.
    pub fn journal_active(&self) -> bool {
        self.journal.is_some()
    }

    /// The zoned allocator.
    pub fn allocator(&self) -> &ZonedAllocator {
        &self.alloc
    }

    /// Whether CTA is active.
    pub fn cta_enabled(&self) -> bool {
        self.alloc.cta_enabled()
    }

    /// The active `ZONE_PTP` layout, if CTA is on.
    pub fn ptp_layout(&self) -> Option<&PtpLayout> {
        self.alloc.ptp_layout()
    }

    /// Kernel counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        self.tlb.stats()
    }

    /// Paging-structure-cache counters.
    pub fn psc_stats(&self) -> crate::psc::PscStats {
        self.psc.stats()
    }

    /// Snapshots every stat source this machine owns into `c`: kernel
    /// walk/map counters, TLB counters, DRAM counters, and the allocator's
    /// global plus per-zone counters. Recording several kernels into the
    /// same registry aggregates them by addition.
    pub fn record_counters(&self, c: &mut cta_telemetry::Counters) {
        c.record(&self.stats);
        c.record(&self.tlb.stats());
        c.record(&self.psc.stats());
        c.record(self.dram.stats());
        // Materialized-row gauge: equal across store backends for the same
        // operation history, so backend choice never perturbs telemetry.
        c.add_u64("dram", "rows_materialized", self.dram.rows_materialized() as u64);
        self.alloc.record_counters(c);
        // Only defended machines carry a `defense` group, so undefended
        // snapshots stay byte-identical to pre-hook telemetry.
        if let Some(snapshot) = self.dram.defense_snapshot() {
            c.record(&snapshot);
        }
    }

    /// Convenience wrapper around [`Kernel::record_counters`] producing a
    /// fresh labeled telemetry snapshot of this machine.
    pub fn counters(&self, label: &str) -> cta_telemetry::Counters {
        let mut c = cta_telemetry::Counters::new(label);
        self.record_counters(&mut c);
        c
    }

    /// Emits the TLB and PSC hit rates as sanitized f64 gauges. Rates are
    /// derived metrics — they would corrupt the additive shard merge if the
    /// [`cta_telemetry::StatSource`] snapshots recorded them — so they are
    /// set (not added) at emission time, with non-finite values sanitized
    /// by [`cta_telemetry::Counters::set_f64`].
    pub fn record_rate_gauges(&self, c: &mut cta_telemetry::Counters) {
        c.set_f64("tlb", "hit_rate", self.tlb.stats().hit_rate());
        c.set_f64("psc", "hit_rate", self.psc.stats().hit_rate());
    }

    /// A process by pid.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchProcess`] if it does not exist.
    pub fn process(&self, pid: Pid) -> Result<&Process, VmError> {
        self.processes.get(&pid.0).ok_or(VmError::NoSuchProcess { pid })
    }

    /// All live pids.
    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().map(|p| Pid(*p)).collect()
    }

    /// Owner of a physical frame, if tracked.
    pub fn frame_owner(&self, pfn: Pfn) -> Option<FrameOwner> {
        self.owners.get(&pfn.0).copied()
    }

    /// The kernel secret planted at boot: its frame and its 16-byte
    /// content. An attacker that can read or overwrite this page through
    /// its own mappings has escalated privileges.
    pub fn kernel_secret(&self) -> (Pfn, [u8; 16]) {
        self.secret.expect("planted at boot")
    }

    /// A file object by id.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchFile`] if it does not exist.
    pub fn file(&self, id: FileId) -> Result<&FileObject, VmError> {
        self.files.get(&id.0).ok_or(VmError::NoSuchFile)
    }

    // ------------------------------------------------------------------
    // Process and memory management
    // ------------------------------------------------------------------

    /// Creates a process, allocating its PML4 root (via `pte_alloc`, so the
    /// root obeys CTA placement too).
    ///
    /// # Errors
    ///
    /// Allocation failure.
    pub fn create_process(&mut self, trusted: bool) -> Result<Pid, VmError> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid.0,
            Process {
                pid,
                trusted,
                cr3: Pfn(0),
                mappings: BTreeMap::new(),
                huge_mappings: BTreeMap::new(),
                pt_pages: Vec::new(),
            },
        );
        let cr3 = self.pte_alloc(pid, PtLevel::Pml4)?;
        self.processes.get_mut(&pid.0).expect("just inserted").cr3 = cr3;
        Ok(pid)
    }

    /// Destroys a process, returning its page tables and anonymous pages to
    /// the allocator.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchProcess`]; allocator errors on inconsistent state.
    pub fn destroy_process(&mut self, pid: Pid) -> Result<(), VmError> {
        let proc = self.processes.remove(&pid.0).ok_or(VmError::NoSuchProcess { pid })?;
        for (va, kind) in &proc.mappings {
            match kind {
                MappingKind::Anonymous { pfn } => {
                    self.owners.remove(&pfn.0);
                    self.alloc.free_pages(*pfn, 0)?;
                }
                MappingKind::File { id, .. } => {
                    if let Some(f) = self.files.get_mut(&id.0) {
                        f.remove_mapping();
                    }
                }
                // Kernel keeps ownership of shared pages.
                MappingKind::SharedKernel { .. } => {}
            }
            let _ = va;
        }
        for block in proc.huge_mappings.values() {
            for f in 0..HUGE_PAGE_SIZE / PAGE_SIZE {
                self.owners.remove(&(block.0 + f));
            }
            self.alloc.free_pages(*block, 9)?;
        }
        for (pfn, _) in &proc.pt_pages {
            self.owners.remove(&pfn.0);
            self.alloc.free_pages(*pfn, 0)?;
        }
        self.tlb.flush_pid(pid);
        self.psc.flush_pid(pid);
        Ok(())
    }

    /// Allocates one zeroed page-table page — **the paper's patch point**.
    ///
    /// With CTA: `__GFP_PTP` (optionally level-tagged), no fallback.
    /// Without: plain `GFP_KERNEL`.
    ///
    /// # Errors
    ///
    /// Allocation failure ­— under CTA a full `ZONE_PTP` is a hard failure
    /// (Rule 1 forbids falling back to ordinary zones).
    pub fn pte_alloc(&mut self, pid: Pid, level: PtLevel) -> Result<Pfn, VmError> {
        let gfp = if self.alloc.cta_enabled() {
            if self.multi_level {
                GfpFlags::ptp_for_level(level)
            } else {
                GfpFlags::PTP
            }
        } else {
            GfpFlags::KERNEL.zeroed()
        };
        let pfn = self.alloc.alloc_page(gfp)?;
        self.dram.fill(pfn.addr().0, PAGE_SIZE as usize, 0)?;
        self.owners.insert(pfn.0, FrameOwner::PageTable { pid, level });
        self.processes
            .get_mut(&pid.0)
            .ok_or(VmError::NoSuchProcess { pid })?
            .pt_pages
            .push((pfn, level));
        self.stats.pt_pages_allocated += 1;
        // Page-table rows are the victims SoftTRR-style defenses watch:
        // register this frame's row(s) with any installed row defense.
        self.notify_defense_pt_frame(pfn);
        Ok(pfn)
    }

    /// Registers a page-table frame's DRAM row(s) as protected with the
    /// installed row defense, if any. A no-op on undefended machines.
    fn notify_defense_pt_frame(&mut self, pfn: Pfn) {
        if self.dram.defense().is_none() {
            return;
        }
        let row_bytes = self.dram.geometry().row_bytes();
        let first = pfn.addr().0 / row_bytes;
        let last = (pfn.addr().0 + PAGE_SIZE - 1) / row_bytes;
        for row in first..=last {
            let _ = self.dram.defense_protect_row(cta_dram::RowId(row));
        }
    }

    /// Installs a software row defense on the DRAM module and replays
    /// protection registrations for every page-table page already
    /// allocated, so installing after boot still protects existing tables.
    pub fn install_row_defense(&mut self, defense: Box<dyn cta_dram::RowDefense>) {
        self.dram.install_defense(defense);
        let frames: Vec<Pfn> =
            self.processes.values().flat_map(|p| p.pt_pages.iter().map(|(pfn, _)| *pfn)).collect();
        for pfn in frames {
            self.notify_defense_pt_frame(pfn);
        }
    }

    /// Maps `va → pfn` in `pid`'s address space, growing the hierarchy as
    /// needed. Internal: callers go through `mmap_*`.
    fn map_page(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        pfn: Pfn,
        flags: PteFlags,
    ) -> Result<(), VmError> {
        let cr3 = self.process(pid)?.cr3();
        let mut table = cr3.addr().0;
        for (level, child) in [
            (PtLevel::Pml4, PtLevel::Pdpt),
            (PtLevel::Pdpt, PtLevel::Pd),
            (PtLevel::Pd, PtLevel::Pt),
        ] {
            let entry_addr = table + va.index(level) * 8;
            let entry = Pte(self.dram.read_u64(entry_addr)?);
            let next = if entry.present() {
                entry.pfn().addr().0
            } else {
                let page = self.pte_alloc(pid, child)?;
                self.dram.write_u64(entry_addr, Pte::new(page, PteFlags::table()).0)?;
                page.addr().0
            };
            table = next;
        }
        let leaf_addr = table + va.index(PtLevel::Pt) * 8;
        self.dram.write_u64(leaf_addr, Pte::new(pfn, flags).0)?;
        self.invalidate_translation(pid, va);
        self.stats.maps += 1;
        Ok(())
    }

    /// Maps `len` bytes of fresh zeroed anonymous memory at `va`.
    ///
    /// # Errors
    ///
    /// [`VmError::Unaligned`] for ragged arguments;
    /// [`VmError::AlreadyMapped`] on overlap; allocation failures.
    pub fn mmap_anonymous(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        len: u64,
        writable: bool,
    ) -> Result<(), VmError> {
        self.check_range(pid, va, len)?;
        let trusted = self.process(pid)?.trusted();
        let pages = len / PAGE_SIZE;
        for i in 0..pages {
            let page_va = va.offset(i * PAGE_SIZE);
            let gfp = if trusted { GfpFlags::KERNEL } else { GfpFlags::HIGHUSER };
            let pfn = self.alloc.alloc_page(gfp)?;
            self.dram.fill(pfn.addr().0, PAGE_SIZE as usize, 0)?;
            self.owners.insert(pfn.0, FrameOwner::Anonymous { pid });
            self.stats.user_pages_allocated += 1;
            let flags = if writable { PteFlags::user_data() } else { PteFlags::user_readonly() };
            self.map_page(pid, page_va, pfn, flags)?;
            self.processes
                .get_mut(&pid.0)
                .expect("checked")
                .mappings
                .insert(page_va.0, MappingKind::Anonymous { pfn });
        }
        Ok(())
    }

    /// Maps `len` bytes of fresh zeroed memory at `va` using 2 MiB huge
    /// pages (PD-level entries with the PS bit set — the section 7
    /// multiple-page-size scenario).
    ///
    /// # Errors
    ///
    /// [`VmError::Unaligned`] unless `va` and `len` are 2 MiB aligned;
    /// [`VmError::AlreadyMapped`] on overlap; allocation failures (each
    /// huge page needs an order-9 physically contiguous block).
    pub fn mmap_huge(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        len: u64,
        writable: bool,
    ) -> Result<(), VmError> {
        if !va.0.is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(VmError::Unaligned { value: va.0 });
        }
        if len == 0 || !len.is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(VmError::Unaligned { value: len });
        }
        self.check_range(pid, va, len)?;
        for i in 0..len / HUGE_PAGE_SIZE {
            let chunk_va = va.offset(i * HUGE_PAGE_SIZE);
            let block = self.alloc.alloc_pages(GfpFlags::HIGHUSER, 9)?;
            self.dram.fill(block.addr().0, HUGE_PAGE_SIZE as usize, 0)?;
            for f in 0..HUGE_PAGE_SIZE / PAGE_SIZE {
                self.owners.insert(block.0 + f, FrameOwner::Anonymous { pid });
            }
            self.stats.user_pages_allocated += HUGE_PAGE_SIZE / PAGE_SIZE;
            let mut flags =
                if writable { PteFlags::user_data() } else { PteFlags::user_readonly() };
            flags.huge = true;
            self.map_huge_entry(pid, chunk_va, block, flags)?;
            self.processes
                .get_mut(&pid.0)
                .expect("checked")
                .huge_mappings
                .insert(chunk_va.0, block);
        }
        Ok(())
    }

    /// Installs a PD-level huge entry for `va`, growing PML4/PDPT as needed.
    fn map_huge_entry(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        block: Pfn,
        flags: PteFlags,
    ) -> Result<(), VmError> {
        let cr3 = self.process(pid)?.cr3();
        let mut table = cr3.addr().0;
        for (level, child) in [(PtLevel::Pml4, PtLevel::Pdpt), (PtLevel::Pdpt, PtLevel::Pd)] {
            let entry_addr = table + va.index(level) * 8;
            let entry = Pte(self.dram.read_u64(entry_addr)?);
            let next = if entry.present() {
                entry.pfn().addr().0
            } else {
                let page = self.pte_alloc(pid, child)?;
                self.dram.write_u64(entry_addr, Pte::new(page, PteFlags::table()).0)?;
                page.addr().0
            };
            table = next;
        }
        let pd_entry = table + va.index(PtLevel::Pd) * 8;
        self.dram.write_u64(pd_entry, Pte::new(block, flags).0)?;
        self.invalidate_translation(pid, va);
        self.stats.maps += 1;
        Ok(())
    }

    /// Unmaps huge pages previously mapped with
    /// [`mmap_huge`](Self::mmap_huge), freeing their blocks.
    ///
    /// # Errors
    ///
    /// Alignment errors; [`VmError::NotMapped`] if a chunk is not a live
    /// huge mapping.
    pub fn munmap_huge(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        if !va.0.is_multiple_of(HUGE_PAGE_SIZE) || len == 0 || !len.is_multiple_of(HUGE_PAGE_SIZE) {
            return Err(VmError::Unaligned { value: va.0 | len });
        }
        for i in 0..len / HUGE_PAGE_SIZE {
            let chunk_va = va.offset(i * HUGE_PAGE_SIZE);
            let block = self
                .processes
                .get_mut(&pid.0)
                .ok_or(VmError::NoSuchProcess { pid })?
                .huge_mappings
                .remove(&chunk_va.0)
                .ok_or(VmError::NotMapped { va: chunk_va })?;
            // Clear the PD entry.
            let cr3 = self.process(pid)?.cr3();
            let mut table = cr3.addr().0;
            let mut present = true;
            for level in [PtLevel::Pml4, PtLevel::Pdpt] {
                let entry = Pte(self.dram.peek_u64(table + chunk_va.index(level) * 8)?);
                if !entry.present() {
                    present = false;
                    break;
                }
                table = entry.pfn().addr().0;
            }
            if present {
                self.dram.write_u64(table + chunk_va.index(PtLevel::Pd) * 8, Pte::EMPTY.0)?;
            }
            // The huge mapping may have been accessed at any 4 KiB offset,
            // each caching its own vpn — invalidate every one of them, not
            // just the chunk base (one invlpg per covered page).
            for f in 0..HUGE_PAGE_SIZE / PAGE_SIZE {
                self.tlb.flush_page(pid, chunk_va.offset(f * PAGE_SIZE));
            }
            self.psc.invalidate_page(pid, chunk_va);
            self.stats.unmaps += 1;
            for f in 0..HUGE_PAGE_SIZE / PAGE_SIZE {
                self.owners.remove(&(block.0 + f));
            }
            self.alloc.free_pages(block, 9)?;
        }
        Ok(())
    }

    /// Allocates a kernel-owned page intended for sharing with user space
    /// (a "double-owned" page like a video or DMA buffer).
    ///
    /// # Errors
    ///
    /// Allocation failures.
    pub fn create_shared_kernel_page(&mut self) -> Result<Pfn, VmError> {
        let pfn = self.alloc.alloc_page(GfpFlags::KERNEL)?;
        self.dram.fill(pfn.addr().0, PAGE_SIZE as usize, 0)?;
        self.owners.insert(pfn.0, FrameOwner::Kernel);
        Ok(pfn)
    }

    /// Maps a kernel-owned shared page into a process's address space —
    /// the double-owned-page mechanism CATT-style defenses overlook: the
    /// page physically lives in *kernel* memory yet user code can access
    /// (and hammer around) it.
    ///
    /// # Errors
    ///
    /// Alignment/overlap errors; the frame must be kernel-owned.
    pub fn mmap_shared(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        pfn: Pfn,
        writable: bool,
    ) -> Result<(), VmError> {
        if !matches!(self.owners.get(&pfn.0), Some(FrameOwner::Kernel)) {
            return Err(VmError::NotMapped { va });
        }
        self.check_range(pid, va, PAGE_SIZE)?;
        let flags = if writable { PteFlags::user_data() } else { PteFlags::user_readonly() };
        self.map_page(pid, va, pfn, flags)?;
        self.processes
            .get_mut(&pid.0)
            .ok_or(VmError::NoSuchProcess { pid })?
            .mappings
            .insert(va.0, MappingKind::SharedKernel { pfn });
        Ok(())
    }

    /// Creates a page-backed file object of `len` bytes (zero-filled).
    ///
    /// # Errors
    ///
    /// [`VmError::Unaligned`]; allocation failures.
    pub fn create_file(&mut self, len: u64) -> Result<FileId, VmError> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned { value: len });
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        let mut frames = Vec::with_capacity((len / PAGE_SIZE) as usize);
        for _ in 0..len / PAGE_SIZE {
            let pfn = self.alloc.alloc_page(GfpFlags::HIGHUSER)?;
            self.dram.fill(pfn.addr().0, PAGE_SIZE as usize, 0)?;
            self.owners.insert(pfn.0, FrameOwner::File { id });
            frames.push(pfn);
        }
        self.files.insert(id.0, FileObject::new(id, frames));
        Ok(id)
    }

    /// Maps a whole file at `va` (shared mapping — the spray primitive).
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchFile`], alignment/overlap errors, allocation
    /// failures while growing page tables.
    pub fn mmap_file(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        file: FileId,
        writable: bool,
    ) -> Result<(), VmError> {
        let frames: Vec<Pfn> =
            self.files.get(&file.0).ok_or(VmError::NoSuchFile)?.frames().to_vec();
        self.check_range(pid, va, frames.len() as u64 * PAGE_SIZE)?;
        for (i, pfn) in frames.iter().enumerate() {
            let page_va = va.offset(i as u64 * PAGE_SIZE);
            let flags = if writable { PteFlags::user_data() } else { PteFlags::user_readonly() };
            self.map_page(pid, page_va, *pfn, flags)?;
            self.processes
                .get_mut(&pid.0)
                .expect("checked")
                .mappings
                .insert(page_va.0, MappingKind::File { id: file, page_index: i });
        }
        self.files.get_mut(&file.0).expect("checked").add_mapping();
        Ok(())
    }

    /// Changes the writability of existing 4 KiB mappings (`mprotect`).
    ///
    /// # Errors
    ///
    /// Alignment errors; [`VmError::NotMapped`] if any page in the range is
    /// not a live 4 KiB mapping.
    pub fn mprotect(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        len: u64,
        writable: bool,
    ) -> Result<(), VmError> {
        if !va.0.is_multiple_of(PAGE_SIZE) || len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned { value: va.0 | len });
        }
        let cr3 = self.process(pid)?.cr3();
        for i in 0..len / PAGE_SIZE {
            let page_va = va.offset(i * PAGE_SIZE);
            if !self.process(pid)?.mappings.contains_key(&page_va.0) {
                return Err(VmError::NotMapped { va: page_va });
            }
            let leaf_addr =
                self.leaf_entry_addr(cr3, page_va)?.ok_or(VmError::NotMapped { va: page_va })?;
            let mut pte = Pte(self.dram.read_u64(leaf_addr)?);
            let mut flags = pte.flags();
            flags.writable = writable;
            pte = Pte::new(pte.pfn(), flags);
            self.dram.write_u64(leaf_addr, pte.0)?;
            self.invalidate_translation(pid, page_va);
        }
        Ok(())
    }

    /// Unmaps `len` bytes at `va`, freeing anonymous frames.
    ///
    /// # Errors
    ///
    /// [`VmError::NotMapped`] if a page in the range is not mapped.
    pub fn munmap(&mut self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        if !va.0.is_multiple_of(PAGE_SIZE) || len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned {
                value: if !len.is_multiple_of(PAGE_SIZE) { len } else { va.0 },
            });
        }
        for i in 0..len / PAGE_SIZE {
            let page_va = va.offset(i * PAGE_SIZE);
            let kind = self
                .processes
                .get_mut(&pid.0)
                .ok_or(VmError::NoSuchProcess { pid })?
                .mappings
                .remove(&page_va.0)
                .ok_or(VmError::NotMapped { va: page_va })?;
            // Clear the leaf PTE.
            let cr3 = self.process(pid)?.cr3();
            if let Some(leaf_addr) = self.leaf_entry_addr(cr3, page_va)? {
                self.dram.write_u64(leaf_addr, Pte::EMPTY.0)?;
            }
            self.invalidate_translation(pid, page_va);
            self.stats.unmaps += 1;
            match kind {
                MappingKind::Anonymous { pfn } => {
                    self.owners.remove(&pfn.0);
                    self.alloc.free_pages(pfn, 0)?;
                }
                MappingKind::File { id, .. } => {
                    if let Some(f) = self.files.get_mut(&id.0) {
                        f.remove_mapping();
                    }
                }
                // Kernel keeps ownership of shared pages.
                MappingKind::SharedKernel { .. } => {}
            }
        }
        Ok(())
    }

    fn check_range(&self, pid: Pid, va: VirtAddr, len: u64) -> Result<(), VmError> {
        if !va.0.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned { value: va.0 });
        }
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(VmError::Unaligned { value: len });
        }
        let proc = self.process(pid)?;
        for i in 0..len / PAGE_SIZE {
            let page = va.0 + i * PAGE_SIZE;
            if proc.mappings.contains_key(&page) {
                return Err(VmError::AlreadyMapped { va: VirtAddr(page) });
            }
        }
        // Huge mappings cover 2 MiB each; reject any intersection.
        for (base, _) in proc.huge_mappings.range(..va.0 + len) {
            if base + HUGE_PAGE_SIZE > va.0 {
                return Err(VmError::AlreadyMapped { va: VirtAddr(*base) });
            }
        }
        Ok(())
    }

    /// Physical address of the leaf PTE for `va`, following the current
    /// (possibly corrupted) tables. `None` if an intermediate level is not
    /// present.
    fn leaf_entry_addr(&self, cr3: Pfn, va: VirtAddr) -> Result<Option<u64>, VmError> {
        let mut table = cr3.addr().0;
        for level in [PtLevel::Pml4, PtLevel::Pdpt, PtLevel::Pd] {
            let entry = Pte(self.dram.peek_u64(table + va.index(level) * 8)?);
            if !entry.present() {
                return Ok(None);
            }
            table = entry.pfn().addr().0;
            if table + PAGE_SIZE > self.dram.capacity_bytes() {
                return Ok(None);
            }
        }
        Ok(Some(table + va.index(PtLevel::Pt) * 8))
    }

    // ------------------------------------------------------------------
    // Translation and access
    // ------------------------------------------------------------------

    /// Translates `va` for `pid`: TLB first, then the paging-structure
    /// caches, then the walk (resumed at the deepest cached level).
    ///
    /// # Errors
    ///
    /// Translation faults; [`VmError::NoSuchProcess`].
    pub fn translate(&mut self, pid: Pid, va: VirtAddr, access: Access) -> Result<u64, VmError> {
        if let Some(hit) = self.tlb.lookup(pid, va) {
            let ok = (!access.write || hit.writable) && (!access.user || hit.user);
            if ok {
                return Ok(hit.page_base + va.page_offset());
            }
        }
        let cr3 = self.process(pid)?.cr3().addr().0;
        self.translate_slow(cr3, pid, va, access)
    }

    /// The TLB-miss path: probe the PSC for a resume point, walk, fill the
    /// PSC with the non-leaf entries just read, and fill the TLB with the
    /// leaf.
    fn translate_slow(
        &mut self,
        cr3: u64,
        pid: Pid,
        va: VirtAddr,
        access: Access,
    ) -> Result<u64, VmError> {
        let start = match self.psc.lookup(pid, va) {
            Some((level, e)) => {
                WalkStart { level, table: e.table, user: e.user, writable: e.writable }
            }
            None => WalkStart::root(cr3),
        };
        let walk = self.walker.walk_phys(&mut self.dram, start, va, access)?;
        self.stats.walks += 1;
        // Cache each non-leaf entry with the cumulative permission AND
        // folded down from the resume point, as hardware does.
        let (mut user, mut writable) = (start.user, start.writable);
        for (level, pte) in walk.intermediates.into_iter().flatten() {
            user &= pte.user();
            writable &= pte.writable();
            self.psc.insert(
                pid,
                va,
                level,
                PscEntry { table: pte.pfn().0 * PAGE_SIZE, user, writable },
            );
        }
        self.tlb.insert(
            pid,
            va,
            TlbEntry {
                page_base: walk.phys - va.page_offset(),
                writable: walk.leaf.writable(),
                user: walk.leaf.user(),
            },
        );
        Ok(walk.phys)
    }

    /// Translates a batch of addresses for one process, resolving the
    /// process (and its CR3) once instead of per call. `phys_out` is
    /// cleared and receives one physical address per input, in order —
    /// bit-for-bit what N [`translate`](Self::translate) calls would
    /// produce, including the simulated-time advance and all counters.
    ///
    /// # Errors
    ///
    /// The first fault aborts the batch; addresses before it have already
    /// been translated (their clock and cache effects stand, exactly as
    /// with individual calls).
    pub fn translate_batch(
        &mut self,
        pid: Pid,
        vas: &[VirtAddr],
        access: Access,
        phys_out: &mut Vec<u64>,
    ) -> Result<(), VmError> {
        phys_out.clear();
        phys_out.reserve(vas.len());
        let cr3 = self.process(pid)?.cr3().addr().0;
        for &va in vas {
            let phys = match self.tlb.lookup(pid, va) {
                Some(hit) if (!access.write || hit.writable) && (!access.user || hit.user) => {
                    hit.page_base + va.page_offset()
                }
                _ => self.translate_slow(cr3, pid, va, access)?,
            };
            phys_out.push(phys);
        }
        Ok(())
    }

    /// Executes a batch of fixed-buffer user accesses against one process:
    /// for each `(va, is_write)` op, `buf` is written to or read from `va`
    /// exactly as the matching [`write_virt`](Self::write_virt) /
    /// [`read_virt`](Self::read_virt) sequence would (page-crossing
    /// included, reads landing in `buf` for later ops to write back out),
    /// with the per-call process dispatch amortized over the whole batch.
    ///
    /// # Errors
    ///
    /// The first fault aborts the batch; earlier ops' effects stand.
    pub fn access_batch(
        &mut self,
        pid: Pid,
        ops: &[(VirtAddr, bool)],
        buf: &mut [u8],
    ) -> Result<(), VmError> {
        let cr3 = self.process(pid)?.cr3().addr().0;
        for &(va, write) in ops {
            let access = if write { Access::user_write() } else { Access::user_read() };
            let mut off = 0usize;
            while off < buf.len() {
                let cur = va.offset(off as u64);
                let phys = match self.tlb.lookup(pid, cur) {
                    Some(hit) if (!access.write || hit.writable) && (!access.user || hit.user) => {
                        hit.page_base + cur.page_offset()
                    }
                    _ => self.translate_slow(cr3, pid, cur, access)?,
                };
                let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
                let take = in_page.min(buf.len() - off);
                if write {
                    self.dram.write(phys, &buf[off..off + take])?;
                } else {
                    self.dram.read_into(phys, &mut buf[off..off + take])?;
                }
                off += take;
            }
        }
        Ok(())
    }

    /// Reads virtual memory (page-crossing allowed).
    ///
    /// # Errors
    ///
    /// Translation faults, DRAM errors.
    pub fn read_virt(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        buf: &mut [u8],
        access: Access,
    ) -> Result<(), VmError> {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = va.offset(off as u64);
            let phys = self.translate(pid, cur, access)?;
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let take = in_page.min(buf.len() - off);
            self.dram.read_into(phys, &mut buf[off..off + take])?;
            off += take;
        }
        Ok(())
    }

    /// Writes virtual memory (page-crossing allowed).
    ///
    /// # Errors
    ///
    /// Translation faults, DRAM errors.
    pub fn write_virt(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        data: &[u8],
        access: Access,
    ) -> Result<(), VmError> {
        let mut off = 0usize;
        while off < data.len() {
            let cur = va.offset(off as u64);
            let phys = self.translate(pid, cur, access)?;
            let in_page = (PAGE_SIZE - cur.page_offset()) as usize;
            let take = in_page.min(data.len() - off);
            self.dram.write(phys, &data[off..off + take])?;
            off += take;
        }
        Ok(())
    }

    /// Flushes the entire TLB *and* the paging-structure caches — CR3
    /// reload semantics, and what an attacker does between hammer reads:
    /// after this every translation re-walks live DRAM from the root.
    pub fn flush_tlb(&mut self) {
        self.tlb.flush_all();
        self.psc.flush_all();
    }

    /// `invlpg` for one page: drops `va`'s TLB entry and every
    /// paging-structure-cache entry covering it, so the next translation of
    /// any address under those prefixes re-reads the (possibly corrupted)
    /// tables from DRAM.
    pub fn flush_page(&mut self, pid: Pid, va: VirtAddr) {
        self.invalidate_translation(pid, va);
    }

    /// Every PTE store through the kernel's page-table write path lands
    /// here: the x86 rule is that changing a paging-structure entry
    /// requires invalidating both the TLB entry and the paging-structure
    /// caches for the affected range.
    fn invalidate_translation(&mut self, pid: Pid, va: VirtAddr) {
        self.tlb.flush_page(pid, va);
        self.psc.invalidate_page(pid, va);
    }

    /// The DRAM row backing `va` for `pid` — what repeated, cache-defeating
    /// accesses to `va` end up activating.
    ///
    /// # Errors
    ///
    /// Translation faults.
    pub fn row_of_virt(&mut self, pid: Pid, va: VirtAddr) -> Result<RowId, VmError> {
        let phys = self.translate(pid, va, Access::user_read())?;
        Ok(self.dram.geometry().row_of_addr(phys)?)
    }

    // ------------------------------------------------------------------
    // Introspection for verification and experiments
    // ------------------------------------------------------------------

    /// Enumerates every page-table entry reachable from `pid`'s root,
    /// read with the non-disturbing debug oracle.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchProcess`].
    pub fn iter_pt_entries(&self, pid: Pid) -> Result<Vec<PteRecord>, VmError> {
        let proc = self.process(pid)?;
        let mut out = Vec::new();
        let mut frontier = vec![(proc.cr3(), PtLevel::Pml4)];
        while let Some((table, level)) = frontier.pop() {
            for i in 0..512u64 {
                let entry_addr = table.addr().0 + i * 8;
                let pte = Pte(self.dram.peek_u64(entry_addr)?);
                if !pte.present() {
                    continue;
                }
                out.push(PteRecord { level, table, entry_addr, pte });
                if level != PtLevel::Pt && !pte.huge() {
                    if let Some(child) = level_child(level) {
                        // Only descend into frames registered as this
                        // process's page table *of the expected level*:
                        // corrupted entries may point at other tables (or
                        // anywhere), and following them would mislabel
                        // levels or loop.
                        let is_expected_child = matches!(
                            self.owners.get(&pte.pfn().0),
                            Some(FrameOwner::PageTable { pid: p, level: l })
                                if *p == pid && *l == child
                        );
                        if is_expected_child {
                            frontier.push((pte.pfn(), child));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Enumerates every present entry of every *registered* page-table page
    /// of `pid`, regardless of whether the page is still reachable from the
    /// root — corruption of upper levels must not hide lower tables from
    /// the verifier.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchProcess`].
    pub fn iter_pt_entries_exhaustive(&self, pid: Pid) -> Result<Vec<PteRecord>, VmError> {
        let proc = self.process(pid)?;
        let mut out = Vec::new();
        for (table, level) in proc.pt_pages() {
            for i in 0..512u64 {
                let entry_addr = table.addr().0 + i * 8;
                let pte = Pte(self.dram.peek_u64(entry_addr)?);
                if pte.present() {
                    out.push(PteRecord { level: *level, table: *table, entry_addr, pte });
                }
            }
        }
        Ok(out)
    }

    /// Simulated time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.dram.now_ns()
    }
}

fn level_child(level: PtLevel) -> Option<PtLevel> {
    match level {
        PtLevel::Pml4 => Some(PtLevel::Pdpt),
        PtLevel::Pdpt => Some(PtLevel::Pd),
        PtLevel::Pd => Some(PtLevel::Pt),
        PtLevel::Pt => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cta_mem::ZoneKind;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::small_test()).unwrap()
    }

    fn cta_kernel() -> Kernel {
        Kernel::new(KernelConfig::small_test_cta()).unwrap()
    }

    #[test]
    fn boot_plants_secret() {
        let k = kernel();
        let (pfn, pattern) = k.kernel_secret();
        assert_eq!(k.frame_owner(pfn), Some(FrameOwner::Kernel));
        assert_eq!(k.dram().peek(pfn.addr().0, 16).unwrap(), pattern.to_vec());
    }

    #[test]
    fn create_process_allocates_root() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let proc = k.process(pid).unwrap();
        assert_eq!(proc.pt_pages().len(), 1);
        assert_eq!(proc.pt_pages()[0].1, PtLevel::Pml4);
        assert_eq!(
            k.frame_owner(proc.cr3()),
            Some(FrameOwner::PageTable { pid, level: PtLevel::Pml4 })
        );
    }

    #[test]
    fn mmap_read_write_round_trip() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, 3 * PAGE_SIZE, true).unwrap();
        let data: Vec<u8> = (0..=255).cycle().take(5000).map(|b: u8| b).collect();
        k.write_virt(pid, va.offset(100), &data, Access::user_write()).unwrap();
        let mut back = vec![0u8; data.len()];
        k.read_virt(pid, va.offset(100), &mut back, Access::user_read()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn mapping_allocates_intermediate_tables() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x10_0000), PAGE_SIZE, true).unwrap();
        // PML4 + PDPT + PD + PT = 4 table pages.
        assert_eq!(k.process(pid).unwrap().pt_pages().len(), 4);
        // A second page in the same 2 MiB region reuses them.
        k.mmap_anonymous(pid, VirtAddr(0x10_1000), PAGE_SIZE, true).unwrap();
        assert_eq!(k.process(pid).unwrap().pt_pages().len(), 4);
    }

    #[test]
    fn overlap_rejected() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, PAGE_SIZE, true).unwrap();
        assert!(matches!(
            k.mmap_anonymous(pid, va, PAGE_SIZE, true),
            Err(VmError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn unaligned_rejected() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        assert!(matches!(
            k.mmap_anonymous(pid, VirtAddr(0x123), PAGE_SIZE, true),
            Err(VmError::Unaligned { .. })
        ));
        assert!(matches!(
            k.mmap_anonymous(pid, VirtAddr(0x1000), 17, true),
            Err(VmError::Unaligned { .. })
        ));
    }

    #[test]
    fn munmap_frees_and_unmaps() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, PAGE_SIZE, true).unwrap();
        let free_before = k.allocator().free_page_count();
        k.munmap(pid, va, PAGE_SIZE).unwrap();
        assert_eq!(k.allocator().free_page_count(), free_before + 1);
        assert!(matches!(
            k.read_virt(pid, va, &mut [0u8; 1], Access::user_read()),
            Err(VmError::Translate(_))
        ));
    }

    #[test]
    fn file_mapping_shares_frames() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let file = k.create_file(2 * PAGE_SIZE).unwrap();
        let va1 = VirtAddr(0x10_0000);
        let va2 = VirtAddr(0x20_0000);
        k.mmap_file(pid, va1, file, true).unwrap();
        k.mmap_file(pid, va2, file, true).unwrap();
        k.write_virt(pid, va1, b"shared!", Access::user_write()).unwrap();
        let mut buf = [0u8; 7];
        k.read_virt(pid, va2, &mut buf, Access::user_read()).unwrap();
        assert_eq!(&buf, b"shared!");
        assert_eq!(k.file(file).unwrap().mapping_count(), 2);
    }

    #[test]
    fn user_cannot_read_kernel_secret_directly() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        // The secret frame is simply not mapped in the process.
        let (pfn, _) = k.kernel_secret();
        // Any attempt through a (nonexistent) mapping faults.
        assert!(k
            .read_virt(pid, VirtAddr(pfn.addr().0), &mut [0u8; 4], Access::user_read())
            .is_err());
    }

    #[test]
    fn cta_kernel_places_page_tables_above_mark() {
        let mut k = cta_kernel();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x10_0000), 4 * PAGE_SIZE, true).unwrap();
        let mark = k.ptp_layout().unwrap().low_water_mark();
        for (pfn, _) in k.process(pid).unwrap().pt_pages() {
            assert!(pfn.addr().0 >= mark, "page table {pfn} below the mark");
        }
        // And user pages below it.
        for record in k.iter_pt_entries(pid).unwrap() {
            if record.level == PtLevel::Pt {
                assert!(record.pte.pfn().addr().0 < mark);
            }
        }
    }

    #[test]
    fn stock_kernel_mixes_page_tables_with_data() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x10_0000), 4 * PAGE_SIZE, true).unwrap();
        assert!(!k.cta_enabled());
        // Page tables come from the same zone as everything else.
        let pt = k.process(pid).unwrap().pt_pages()[0].0;
        assert_eq!(k.allocator().zone_of(pt), Some(ZoneKind::Dma));
    }

    #[test]
    fn cta_pt_pages_always_in_ptp_zone() {
        let mut k = cta_kernel();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x40_0000), 8 * PAGE_SIZE, true).unwrap();
        for (pfn, _) in k.process(pid).unwrap().pt_pages() {
            assert_eq!(k.allocator().zone_of(*pfn), Some(ZoneKind::Ptp));
        }
    }

    #[test]
    fn translate_uses_tlb() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, PAGE_SIZE, true).unwrap();
        let walks_before = k.stats().walks;
        k.translate(pid, va, Access::user_read()).unwrap();
        k.translate(pid, va.offset(8), Access::user_read()).unwrap();
        assert_eq!(k.stats().walks, walks_before + 1, "second translate hits TLB");
        k.flush_tlb();
        k.translate(pid, va, Access::user_read()).unwrap();
        assert_eq!(k.stats().walks, walks_before + 2);
    }

    #[test]
    fn destroy_process_reclaims_everything() {
        let mut k = kernel();
        let free0 = k.allocator().free_page_count();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x10_0000), 4 * PAGE_SIZE, true).unwrap();
        k.destroy_process(pid).unwrap();
        assert_eq!(k.allocator().free_page_count(), free0);
        assert!(k.process(pid).is_err());
    }

    #[test]
    fn iter_pt_entries_sees_all_levels() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        k.mmap_anonymous(pid, VirtAddr(0x10_0000), 2 * PAGE_SIZE, true).unwrap();
        let records = k.iter_pt_entries(pid).unwrap();
        let levels: std::collections::HashSet<PtLevel> = records.iter().map(|r| r.level).collect();
        assert_eq!(levels.len(), 4, "one entry at each level");
        let leaves = records.iter().filter(|r| r.level == PtLevel::Pt).count();
        assert_eq!(leaves, 2);
    }

    #[test]
    fn row_of_virt_matches_translation() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, PAGE_SIZE, true).unwrap();
        let phys = k.translate(pid, va, Access::user_read()).unwrap();
        let row = k.row_of_virt(pid, va).unwrap();
        assert_eq!(row, k.dram().geometry().row_of_addr(phys).unwrap());
    }

    #[test]
    fn mprotect_toggles_writability() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_anonymous(pid, va, 2 * PAGE_SIZE, true).unwrap();
        k.write_virt(pid, va, &[1], Access::user_write()).unwrap();
        k.mprotect(pid, va, 2 * PAGE_SIZE, false).unwrap();
        assert!(matches!(
            k.write_virt(pid, va, &[2], Access::user_write()),
            Err(VmError::Translate(_))
        ));
        // Reads still work, and the earlier value is intact.
        let mut b = [0u8; 1];
        k.read_virt(pid, va, &mut b, Access::user_read()).unwrap();
        assert_eq!(b, [1]);
        k.mprotect(pid, va, 2 * PAGE_SIZE, true).unwrap();
        k.write_virt(pid, va, &[3], Access::user_write()).unwrap();
    }

    #[test]
    fn mprotect_requires_live_mappings() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        assert!(matches!(
            k.mprotect(pid, VirtAddr(0x4000_0000), PAGE_SIZE, false),
            Err(VmError::NotMapped { .. })
        ));
        assert!(matches!(
            k.mprotect(pid, VirtAddr(0x4000_0123), PAGE_SIZE, false),
            Err(VmError::Unaligned { .. })
        ));
    }

    #[test]
    fn huge_mapping_round_trip() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_huge(pid, va, HUGE_PAGE_SIZE, true).unwrap();
        assert_eq!(k.process(pid).unwrap().huge_mapping_count(), 1);
        let data = vec![0x5Au8; 9000];
        k.write_virt(pid, va.offset(12345), &data, Access::user_write()).unwrap();
        let mut back = vec![0u8; 9000];
        k.read_virt(pid, va.offset(12345), &mut back, Access::user_read()).unwrap();
        assert_eq!(back, data);
        // The walk terminates at PD level (3 levels, not 4).
        let records = k.iter_pt_entries(pid).unwrap();
        let pd_huge = records.iter().filter(|r| r.level == PtLevel::Pd && r.pte.huge()).count();
        assert_eq!(pd_huge, 1);
        assert!(records.iter().all(|r| r.level != PtLevel::Pt));
    }

    #[test]
    fn huge_mapping_rejects_misalignment_and_overlap() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        assert!(matches!(
            k.mmap_huge(pid, VirtAddr(0x4000_1000), HUGE_PAGE_SIZE, true),
            Err(VmError::Unaligned { .. })
        ));
        let va = VirtAddr(0x4000_0000);
        k.mmap_huge(pid, va, HUGE_PAGE_SIZE, true).unwrap();
        assert!(matches!(
            k.mmap_huge(pid, va, HUGE_PAGE_SIZE, true),
            Err(VmError::AlreadyMapped { .. })
        ));
        // A 4 KiB mapping inside the huge region is also rejected.
        assert!(matches!(
            k.mmap_anonymous(pid, va.offset(4 * PAGE_SIZE), PAGE_SIZE, true),
            Err(VmError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn huge_munmap_frees_the_block() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let free0 = k.allocator().free_page_count();
        let va = VirtAddr(0x4000_0000);
        k.mmap_huge(pid, va, HUGE_PAGE_SIZE, true).unwrap();
        k.munmap_huge(pid, va, HUGE_PAGE_SIZE).unwrap();
        // The 512-page block returned; only the PT pages grown by the huge
        // mapping (PDPT + PD; cr3 predates free0) remain out.
        let grown_pt_pages = k.process(pid).unwrap().pt_pages().len() as u64 - 1;
        assert_eq!(k.allocator().free_page_count(), free0 - grown_pt_pages);
        assert!(k.read_virt(pid, va, &mut [0u8; 8], Access::user_read()).is_err());
    }

    #[test]
    fn destroy_process_reclaims_huge_mappings() {
        let mut k = kernel();
        let free0 = k.allocator().free_page_count();
        let pid = k.create_process(false).unwrap();
        k.mmap_huge(pid, VirtAddr(0x4000_0000), 2 * HUGE_PAGE_SIZE, true).unwrap();
        k.destroy_process(pid).unwrap();
        assert_eq!(k.allocator().free_page_count(), free0);
    }

    #[test]
    fn ps_bit_screening_removes_vulnerable_frames_from_the_zone() {
        use cta_dram::DisturbanceParams;
        let mut config = KernelConfig::small_test_cta();
        config.cta =
            Some(cta_mem::PtpSpec::paper_default().with_size(256 * 1024).with_multi_level(true));
        config.dram.disturbance = DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() };
        config.screen_ps_bit = true;
        let kernel = Kernel::new(config).unwrap();
        let layout = kernel.ptp_layout().unwrap();
        assert!(!layout.screened_pages().is_empty(), "pf=5% must screen something");
        // No remaining high-level sub-zone frame has a vulnerable PS cell.
        let mut dram = DramModule::new(kernel.dram().config().clone());
        for (range, level) in layout.subzones() {
            if !matches!(level, Some(PtLevel::Pd) | Some(PtLevel::Pdpt)) {
                continue;
            }
            let mut page = range.start;
            while page < range.end {
                let row = dram.geometry().row_of_addr(page).unwrap();
                let base = (page % dram.geometry().row_bytes()) * 8;
                let bad = dram.vulnerable_bits(row).unwrap().iter().any(|vb| {
                    vb.bit >= base && vb.bit < base + PAGE_SIZE * 8 && (vb.bit - base) % 64 == 7
                });
                assert!(!bad, "screened zone still contains PS-vulnerable frame {page:#x}");
                page += PAGE_SIZE;
            }
        }
    }

    #[test]
    fn ptp_exhaustion_is_hard_failure_under_cta() {
        let mut k = cta_kernel();
        let pid = k.create_process(false).unwrap();
        // Burn through ZONE_PTP by mapping pages at widely spread addresses
        // (each 2 MiB stride needs a fresh PT page).
        let mut failed = false;
        for i in 0..4096u64 {
            let va = VirtAddr(0x4000_0000 + i * (2 << 20));
            match k.mmap_anonymous(pid, va, PAGE_SIZE, true) {
                Ok(()) => {}
                Err(VmError::Alloc(_)) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed, "ZONE_PTP must eventually exhaust without fallback");
        // Ordinary memory is still available.
        assert!(k.allocator().free_page_count() > 0);
    }

    #[test]
    fn psc_resumes_walks_at_the_deepest_cached_level() {
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, 4 * PAGE_SIZE, true).unwrap();
        // First translation walks all 4 levels and fills the PDE cache.
        k.translate(pid, va, Access::user_read()).unwrap();
        assert_eq!(k.psc_stats().misses, 1);
        // A sibling page in the same 2 MiB region misses the TLB but hits
        // the PDE cache: the walk reads only its leaf PTE.
        let reads0 = k.dram().stats().reads;
        k.translate(pid, va.offset(PAGE_SIZE), Access::user_read()).unwrap();
        assert_eq!(k.dram().stats().reads - reads0, 1, "PSC resume reads only the leaf");
        assert_eq!(k.psc_stats().hits, 1);
        // flush_tlb is a CR3 reload: the PSC empties too.
        k.flush_tlb();
        let reads1 = k.dram().stats().reads;
        k.translate(pid, va, Access::user_read()).unwrap();
        assert_eq!(k.dram().stats().reads - reads1, 4, "cold walk reads all 4 levels");
    }

    #[test]
    fn psc_disabled_kernel_walks_from_root_on_every_miss() {
        let mut config = KernelConfig::small_test();
        config.psc_entries = 0;
        let mut k = Kernel::new(config).unwrap();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x10_0000);
        k.mmap_anonymous(pid, va, 2 * PAGE_SIZE, true).unwrap();
        k.translate(pid, va, Access::user_read()).unwrap();
        let reads0 = k.dram().stats().reads;
        k.translate(pid, va.offset(PAGE_SIZE), Access::user_read()).unwrap();
        assert_eq!(k.dram().stats().reads - reads0, 4, "no PSC: full walk");
        assert_eq!(k.psc_stats(), crate::psc::PscStats::default());
    }

    #[test]
    fn flushed_caches_never_serve_a_corrupted_pde() {
        // The satellite coherence scenario: corrupt a PDE in DRAM while
        // both the TLB and the PDE cache hold entries derived from it. The
        // warm TLB keeps serving the old frame (hardware-faithful
        // staleness); after `flush_page` the translation follows the
        // corrupted pointer, and the stale-but-flushed caches never hand
        // the old frame back.
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va_a = VirtAddr(0x4000_0000); // PD index 0
        let va_b = VirtAddr(0x4020_0000); // PD index 1, same PD table
        k.mmap_anonymous(pid, va_a, PAGE_SIZE, true).unwrap();
        k.mmap_anonymous(pid, va_b, PAGE_SIZE, true).unwrap();
        let phys_a = k.translate(pid, va_a, Access::user_read()).unwrap();
        let phys_b = k.translate(pid, va_b, Access::user_read()).unwrap();
        assert_ne!(phys_a, phys_b);
        let records = k.iter_pt_entries(pid).unwrap();
        let pde_of = |va: VirtAddr| {
            records
                .iter()
                .find(|r| {
                    r.level == PtLevel::Pd
                        && (r.entry_addr - r.table.addr().0) / 8 == va.index(PtLevel::Pd)
                })
                .copied()
                .expect("PDE present")
        };
        let pde_a = pde_of(va_a);
        let pt_b = pde_of(va_b).pte.pfn();
        // Re-warm A's TLB entry and PDE-cache entry, then flip A's PDE to
        // point at B's page table.
        k.translate(pid, va_a, Access::user_read()).unwrap();
        k.dram_mut().write_u64(pde_a.entry_addr, pde_a.pte.with_pfn(pt_b).0).unwrap();
        assert_eq!(
            k.translate(pid, va_a, Access::user_read()).unwrap(),
            phys_a,
            "warm TLB still serves the pre-corruption frame"
        );
        k.flush_page(pid, va_a);
        assert_eq!(
            k.translate(pid, va_a, Access::user_read()).unwrap(),
            phys_b,
            "after invlpg the walk follows the corrupted PDE into B's table"
        );
        for _ in 0..4 {
            assert_eq!(
                k.translate(pid, va_a, Access::user_read()).unwrap(),
                phys_b,
                "the old frame is never served again"
            );
        }
    }

    #[test]
    fn munmap_huge_flushes_interior_tlb_entries() {
        // Regression test: the unmap used to flush only the chunk-base vpn,
        // leaving the other 511 pages of the 2 MiB chunk stale in the TLB.
        let mut k = kernel();
        let pid = k.create_process(false).unwrap();
        let va = VirtAddr(0x4000_0000);
        k.mmap_huge(pid, va, HUGE_PAGE_SIZE, true).unwrap();
        let interior = va.offset(5 * PAGE_SIZE);
        k.translate(pid, interior, Access::user_read()).unwrap();
        k.munmap_huge(pid, va, HUGE_PAGE_SIZE).unwrap();
        assert!(
            matches!(k.translate(pid, interior, Access::user_read()), Err(VmError::Translate(_))),
            "interior vpn must not survive the huge unmap"
        );
    }

    #[test]
    fn translate_batch_matches_per_call_translate_bit_for_bit() {
        let mut serial = kernel();
        let mut batched = kernel();
        let vas: Vec<VirtAddr> = (0..24)
            .map(|i| VirtAddr(0x10_0000 + (i % 6) * PAGE_SIZE))
            .chain((0..8).map(|i| VirtAddr(0x4000_0000 + i * PAGE_SIZE)))
            .collect();
        let mut phys_serial = Vec::new();
        let pid_s = serial.create_process(false).unwrap();
        serial.mmap_anonymous(pid_s, VirtAddr(0x10_0000), 6 * PAGE_SIZE, true).unwrap();
        serial.mmap_anonymous(pid_s, VirtAddr(0x4000_0000), 8 * PAGE_SIZE, true).unwrap();
        for &va in &vas {
            phys_serial.push(serial.translate(pid_s, va, Access::user_read()).unwrap());
        }
        let pid_b = batched.create_process(false).unwrap();
        batched.mmap_anonymous(pid_b, VirtAddr(0x10_0000), 6 * PAGE_SIZE, true).unwrap();
        batched.mmap_anonymous(pid_b, VirtAddr(0x4000_0000), 8 * PAGE_SIZE, true).unwrap();
        let mut phys_batched = Vec::new();
        batched.translate_batch(pid_b, &vas, Access::user_read(), &mut phys_batched).unwrap();
        assert_eq!(phys_batched, phys_serial);
        assert_eq!(batched.now_ns(), serial.now_ns(), "identical simulated time");
        assert_eq!(batched.stats(), serial.stats());
        assert_eq!(batched.tlb_stats(), serial.tlb_stats());
        assert_eq!(batched.psc_stats(), serial.psc_stats());
    }

    #[test]
    fn access_batch_matches_individual_accesses() {
        let mut serial = kernel();
        let mut batched = kernel();
        // Mixed reads and writes, including page-crossing ones (offset near
        // a page end with a 64-byte buffer), sharing one buffer so reads
        // feed later writes.
        let ops: Vec<(VirtAddr, bool)> = vec![
            (VirtAddr(0x10_0000), true),
            (VirtAddr(0x10_0FC0), false),
            (VirtAddr(0x10_0FE0), true), // crosses into the next page
            (VirtAddr(0x10_2000), false),
            (VirtAddr(0x10_1000), true),
            (VirtAddr(0x10_0000), false),
        ];
        let run_serial = |k: &mut Kernel| {
            let pid = k.create_process(false).unwrap();
            k.mmap_anonymous(pid, VirtAddr(0x10_0000), 4 * PAGE_SIZE, true).unwrap();
            let mut buf = [0x2Au8; 64];
            for &(va, write) in &ops {
                if write {
                    k.write_virt(pid, va, &buf, Access::user_write()).unwrap();
                } else {
                    k.read_virt(pid, va, &mut buf, Access::user_read()).unwrap();
                }
            }
            buf
        };
        let buf_serial = run_serial(&mut serial);
        let pid = batched.create_process(false).unwrap();
        batched.mmap_anonymous(pid, VirtAddr(0x10_0000), 4 * PAGE_SIZE, true).unwrap();
        let mut buf_batched = [0x2Au8; 64];
        batched.access_batch(pid, &ops, &mut buf_batched).unwrap();
        assert_eq!(buf_batched, buf_serial);
        assert_eq!(batched.now_ns(), serial.now_ns());
        assert_eq!(batched.tlb_stats(), serial.tlb_stats());
        assert_eq!(batched.stats(), serial.stats());
    }
}
