//! Offline, in-tree stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io (see the "Offline
//! builds" section of the repository README), so the workspace vendors the
//! small slice of `rand` it actually depends on: the [`RngCore`] /
//! [`SeedableRng`] traits, the [`Rng`] extension trait with `gen`,
//! `gen_range`, and `gen_bool`, and unbiased integer/float sampling.
//!
//! Semantics match upstream `rand` where the workspace depends on them
//! (uniform `[0, 1)` floats with 53 significant bits, unbiased integer
//! ranges, `seed_from_u64` via SplitMix64 expansion). Exact output
//! *streams* are not guaranteed to match upstream — the simulation defines
//! its own reproducibility contract keyed on seeds, not on a particular
//! `rand` release.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core random-number-generator interface: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same construction upstream `rand_core` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bit stream
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits in [0, 1), as in upstream rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64,
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased sampling by power-of-two masking + rejection.
                let mask = span.next_power_of_two().wrapping_sub(1);
                loop {
                    let x = rng.next_u64() & mask;
                    if x < span {
                        return self.start + x as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let mask = span.next_power_of_two().wrapping_sub(1);
                loop {
                    let x = rng.next_u64() & mask;
                    if x < span {
                        return ((self.start as i64).wrapping_add(x as i64)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 over an incrementing state: cheap and well spread.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = Counter(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.gen_range(2u64..12);
            assert!((2..12).contains(&x));
            seen[(x - 2) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values of a small range appear");
    }

    #[test]
    fn usize_and_float_ranges() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let f = rng.gen_range(1e-6f64..1e-2);
            assert!((1e-6..1e-2).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = Counter(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = Counter(9);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }
}
