//! The [`Strategy`] trait and the primitive strategies/combinators the
//! workspace's property tests use.

use std::fmt::Debug;
use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of a given type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is exactly a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among several strategies of one value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// A union over the given alternatives; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0usize..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (1u32..5, 0u8..2).prop_map(|(a, b)| a as u64 * 10 + b as u64);
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((10..=41).contains(&v));
        }
    }

    #[test]
    fn union_covers_all_alternatives() {
        let u = Union::new(vec![Just(1u64).boxed(), Just(2u64).boxed(), Just(3u64).boxed()]);
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
