//! Test-case execution: configuration, errors, and the case loop.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::SeedableRng;

/// The RNG driving input generation. A real ChaCha8 stream, seeded
/// deterministically per test (see [`run_cases`]).
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by an assumption and should be regenerated.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (not a failure) with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a over the test name: a stable per-test default seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure with the generated inputs included in the message.
///
/// The `case` closure receives the RNG and a scratch `String` it must fill
/// with a debug rendering of the generated inputs *before* running the body,
/// so failures and panics can report them.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| name_seed(name));
    let mut rng = TestRng::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let mut desc = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "[{name}] too many rejected cases ({rejected}) — \
                     assumptions are too strict"
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "[{name}] failed after {passed} passing case(s)\n\
                     inputs: {desc}\nseed: {seed}\n{msg}"
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                panic!(
                    "[{name}] panicked after {passed} passing case(s)\n\
                     inputs: {desc}\nseed: {seed}\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut n = 0u32;
        run_cases(
            &ProptestConfig::with_cases(37),
            "counter",
            |_rng, _desc| {
                n += 1;
                Ok(())
            },
        );
        assert_eq!(n, 37);
    }

    #[test]
    #[should_panic(expected = "inputs: (5,)")]
    fn failure_reports_inputs() {
        run_cases(&ProptestConfig::with_cases(5), "fail", |_rng, desc| {
            *desc = "(5,)".to_string();
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_do_not_count_as_passes() {
        let mut calls = 0u32;
        run_cases(&ProptestConfig::with_cases(10), "rej", |_rng, _desc| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::reject("skip"))
            } else {
                Ok(())
            }
        });
        // Passes land on odd calls; the 10th pass is call 19.
        assert_eq!(calls, 19);
    }
}
