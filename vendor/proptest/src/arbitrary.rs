//! `any::<T>()` — full-range strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::{Rng, RngCore};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Unit-interval like upstream's finite-f64 bias toward usability.
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u64_spans_high_bits() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = any::<u64>();
        let high = (0..256).filter(|_| strat.generate(&mut rng) > u64::MAX / 2).count();
        assert!(high > 64, "high half should appear often, got {high}");
    }

    #[test]
    fn any_bool_yields_both() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = any::<bool>();
        let trues = (0..128).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 16 && trues < 112);
    }
}
