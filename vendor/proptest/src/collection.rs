//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_in_range() {
        let strat = vec(0u8..5, 1..60);
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..60).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }
}
