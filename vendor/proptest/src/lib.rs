//! Offline, in-tree property-testing harness.
//!
//! Implements the slice of the `proptest` crate API this workspace's test
//! suites use: the [`strategy::Strategy`] trait with `prop_map`, range and
//! tuple strategies, [`collection::vec`], `any::<T>()`, `prop_oneof!` /
//! `Just`, and the `proptest!` macro with `#![proptest_config(...)]`
//! support and early-return `prop_assert!` semantics.
//!
//! Differences from upstream worth knowing:
//!
//! - **No shrinking.** A failing case reports the generated inputs but does
//!   not minimize them.
//! - **Deterministic by default.** Each test's RNG is seeded from the test
//!   name (override with `PROPTEST_RNG_SEED=<u64>` in the environment), so
//!   failures reproduce across runs without a persistence file.
//! - Cases that panic are reported with their inputs, like upstream.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Strategy combinators and primitive strategies.
pub mod strategy_impls {}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the generated inputs attached) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: munches one test function at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(
                &config,
                stringify!($name),
                |rng, desc| {
                    let values = ($($crate::strategy::Strategy::generate(&($strat), rng),)+);
                    *desc = format!("{:?}", values);
                    let ($($pat,)+) = values;
                    let body = move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        let _: () = $body;
                        ::core::result::Result::Ok(())
                    };
                    body()
                },
            );
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}
