//! Offline, in-tree micro-benchmark harness.
//!
//! Implements the slice of the `criterion` crate API this workspace's
//! `benches/` targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Compared to upstream there is no statistical analysis, HTML report, or
//! baseline comparison: each benchmark is auto-calibrated to a minimum
//! measurement window, run for a handful of samples, and the median
//! per-iteration time is printed as one line. That is enough to keep
//! `cargo bench` functional and comparable run-to-run in this offline
//! environment; the repo's `bench-baseline` binary is the machine-readable
//! performance record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Runs one benchmark's measured section.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` outside the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    /// Minimum wall time one sample should cover, for calibration.
    min_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            min_sample: Duration::from_millis(5),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, self.min_sample, f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Registers and immediately runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.min_sample,
            f,
        );
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Calibrates the iteration count, takes samples, prints the median.
fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, min_sample: Duration, mut f: F) {
    // Calibration: grow iters until one sample covers the minimum window.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= min_sample || iters >= 1 << 20 {
            break;
        }
        // Jump toward the target window rather than doubling blindly.
        let factor = if b.elapsed.is_zero() {
            16.0
        } else {
            (min_sample.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64 * factor).ceil() as u64).min(1 << 20);
    }

    let mut per_iter_ns: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!("bench {id:<48} {median:>14.1} ns/iter ({iters} iters x {samples} samples)");
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_calibrates() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(2u64 + 2)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
