//! Offline, in-tree ChaCha8 random number generator.
//!
//! Implements the real ChaCha block function (IETF variant, 8 rounds) over
//! the vendored `rand` traits. The keystream is a genuine ChaCha8 stream —
//! statistically strong and fully reproducible from a 32-byte seed — but
//! word-for-word equality with the upstream `rand_chacha` crate's stream is
//! *not* part of this workspace's contract (no test or experiment here pins
//! upstream output values; determinism is keyed on seeds alone).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Number of ChaCha quarter-round double-rounds: ChaCha8 = 4 double rounds.
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 stream cipher used as a random number generator.
///
/// Mirrors `rand_chacha::ChaCha8Rng`: seeded from 32 bytes (the ChaCha key),
/// with a 64-bit block counter and a selectable 64-bit stream id.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12), little-endian from the seed bytes.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// 64-bit stream id / nonce (state words 14..16).
    stream: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unconsumed word index in `buf`; 16 means "buffer exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// ChaCha constants: "expand 32-byte k".
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    /// Generates the keystream block for the current counter into `buf`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    /// Sets the stream id (nonce), restarting the keystream from block 0.
    ///
    /// Different stream ids on the same key yield independent keystreams —
    /// this is what per-shard RNG derivation builds on.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// Returns the current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Sets the block position within the stream.
    pub fn set_word_pos(&mut self, block: u64) {
        self.counter = block;
        self.index = 16;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_diverge_and_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);

        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(1);
        let mut b2 = ChaCha8Rng::seed_from_u64(7);
        b2.set_stream(1);
        for _ in 0..100 {
            assert_eq!(c.next_u64(), b2.next_u64());
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_and_ranges_work_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(0u64..97);
            assert!(x < 97);
        }
    }

    /// The keystream must be a real ChaCha8 stream: uniform-ish bit counts.
    #[test]
    fn keystream_bits_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 10_000u64;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 0.5, "mean ones per u64 = {mean}");
    }
}
