//! Cross-crate acceptance: every row-store backend produces bit-identical
//! attack outcomes, campaign summaries, and telemetry JSON for the same
//! seeds, serial (`threads = 1`) and sharded (`threads = N`) alike.

use monotonic_cta::attack::{
    run_campaign_with_counters, CampaignSummary, SprayAttack, TemplatingAttack,
};
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::{DisturbanceParams, StoreBackend};
use monotonic_cta::vm::{Kernel, VmError};

fn build(seed: u64, protected: bool, backend: StoreBackend) -> Result<Kernel, VmError> {
    SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(seed)
        .protected(protected)
        .disturbance(DisturbanceParams { pf: 0.05, ..DisturbanceParams::default() })
        .backend(backend)
        .build()
}

#[test]
fn spray_campaigns_agree_across_backends_and_shards() {
    let attack = SprayAttack::default();
    let seeds: Vec<u64> = (0..6).collect();
    let mut reference: Option<(String, String, CampaignSummary)> = None;
    for backend in StoreBackend::ALL {
        for threads in [1usize, 4] {
            let (outcomes, counters) = run_campaign_with_counters(
                "parity",
                &seeds,
                threads,
                |s| build(s, false, backend),
                |k| attack.run(k),
            )
            .unwrap();
            let outcome_repr = format!("{outcomes:?}");
            let summary = CampaignSummary::from_outcomes(&outcomes);
            let json = counters.to_json();
            match &reference {
                None => reference = Some((outcome_repr, json, summary)),
                Some((ref_outcomes, ref_json, ref_summary)) => {
                    assert_eq!(
                        &outcome_repr, ref_outcomes,
                        "outcomes differ: backend={backend} threads={threads}"
                    );
                    assert_eq!(
                        &json, ref_json,
                        "telemetry differs: backend={backend} threads={threads}"
                    );
                    assert_eq!(
                        &summary, ref_summary,
                        "summary differs: backend={backend} threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn templating_attack_agrees_across_backends_on_protected_machines() {
    let attack = TemplatingAttack::default();
    let mut reference: Option<String> = None;
    for backend in StoreBackend::ALL {
        let mut kernel = build(3, true, backend).unwrap();
        let outcome = attack.run(&mut kernel).unwrap();
        let repr = format!("{outcome:?}|{}", kernel.counters("t").to_json());
        match &reference {
            None => reference = Some(repr),
            Some(r) => assert_eq!(&repr, r, "backend={backend}"),
        }
    }
}
