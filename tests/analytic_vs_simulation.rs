//! Cross-crate integration: the analytic model against independent
//! implementations (Monte Carlo and the attack crate's projections).

use monotonic_cta::analysis::{
    expected_exploitable_ptes, monte_carlo_p_exploitable, p_exploitable, table2, table3,
    AttackTiming, FlipStats, Restriction, SystemShape,
};
use monotonic_cta::attack::AttackTimeModel;

#[test]
fn attack_crate_and_analysis_crate_agree_on_times() {
    // Two independently written implementations of the section 5 timing
    // model must produce identical numbers.
    let analysis = AttackTiming::default();
    let attack = AttackTimeModel::default();
    for (gb, mb) in [(8u64, 32u64), (16, 32), (32, 64)] {
        let shape = SystemShape::new(gb << 30, mb << 20);
        for e in [0.5f64, 6.7, 83.59] {
            let a = analysis.expected_days(&shape, e);
            let b = attack.expected_days(
                shape.target_pages(),
                shape.zone_rows(),
                shape.ptes_per_row(),
                e,
            );
            assert!((a - b).abs() / a < 1e-12, "{gb}GB/{mb}MB e={e}: {a} vs {b}");
        }
    }
}

#[test]
fn monte_carlo_validates_closed_form_at_scaled_stats() {
    for (pf, p01) in [(0.02f64, 0.1f64), (0.05, 0.3), (0.01, 0.9)] {
        let stats = FlipStats { pf, p0_to_1: p01, p1_to_0: 1.0 - p01 };
        for restriction in [Restriction::None, Restriction::AtLeastTwoZeros] {
            let analytic = p_exploitable(8, &stats, restriction);
            let mc = monte_carlo_p_exploitable(8, &stats, restriction, 400_000, 99);
            let tolerance = (4.0 * mc.std_error()).max(analytic * 0.15);
            assert!(
                (mc.p_hat - analytic).abs() < tolerance,
                "pf={pf} p01={p01} {restriction:?}: mc={} analytic={analytic}",
                mc.p_hat
            );
        }
    }
}

#[test]
fn headline_numbers_match_the_paper() {
    // The abstract's three headline numbers.
    let shape = SystemShape::new(8 << 30, 32 << 20);
    let stats = FlipStats::paper_default();

    // "only one out of 2.04 × 10^5 systems is vulnerable"
    let restricted = expected_exploitable_ptes(&shape, &stats, Restriction::AtLeastTwoZeros);
    let one_in = 1.0 / restricted;
    assert!((one_in - 2.04e5).abs() / 2.04e5 < 0.05, "one in {one_in:.3e}");

    // "expected attack time on the vulnerable system is 231 days"
    let days = AttackTiming::default().expected_days(&shape, restricted);
    assert!((days - 230.7).abs() < 2.5, "days {days}");

    // Six-orders-of-magnitude slowdown vs the 20 s fastest attack.
    let unrestricted = expected_exploitable_ptes(&shape, &stats, Restriction::None);
    let seconds = AttackTiming::default().expected_days(&shape, unrestricted) * 86_400.0;
    assert!(seconds / 20.0 > 1e5);
}

#[test]
fn tables_are_internally_consistent() {
    for spec in [table2(), table3()] {
        let rows = spec.generate();
        for row in &rows {
            assert!(row.exploitable > 0.0);
            assert!(row.attack_days > 0.0);
        }
        // Larger memory ⇒ longer attack (more target pages), same zone.
        for mb in [32u64, 64] {
            let days: Vec<f64> = [8u64, 16, 32]
                .iter()
                .map(|gb| {
                    rows.iter()
                        .find(|r| {
                            r.phys_gib == *gb
                                && r.ptp_mib == mb
                                && r.restriction == Restriction::None
                        })
                        .unwrap()
                        .attack_days
                })
                .collect();
            assert!(days[0] < days[1] && days[1] < days[2], "{days:?}");
        }
    }
}
