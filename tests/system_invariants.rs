//! Cross-crate integration: CTA system invariants across boot variants.

use monotonic_cta::core::verify::verify_system;
use monotonic_cta::core::{PtpIndicator, SystemBuilder};
use monotonic_cta::dram::CellType;
use monotonic_cta::mem::{PtLevel, ZoneKind, PAGE_SIZE};
use monotonic_cta::vm::VirtAddr;

#[test]
fn profiled_boot_equals_oracle_boot() {
    for seed in [1u64, 2, 3] {
        let a = SystemBuilder::small_test().seed(seed).protected(true).build().unwrap();
        let b = SystemBuilder::small_test()
            .seed(seed)
            .protected(true)
            .profile_cells(true)
            .build()
            .unwrap();
        assert_eq!(
            a.ptp_layout().unwrap().low_water_mark(),
            b.ptp_layout().unwrap().low_water_mark()
        );
        assert_eq!(a.ptp_layout().unwrap().subzones(), b.ptp_layout().unwrap().subzones());
    }
}

#[test]
fn every_pt_page_is_true_cell_above_mark_under_load() {
    let mut kernel =
        SystemBuilder::new(16 << 20).ptp_bytes(1 << 20).protected(true).build().unwrap();
    // Three processes with scattered mappings.
    for p in 0..3u64 {
        let pid = kernel.create_process(p == 0).unwrap();
        for i in 0..5u64 {
            kernel
                .mmap_anonymous(pid, VirtAddr(0x4000_0000 + i * (4 << 20)), 2 * PAGE_SIZE, true)
                .unwrap();
        }
    }
    let mark = kernel.ptp_layout().unwrap().low_water_mark();
    for pid in kernel.pids() {
        for (pfn, _) in kernel.process(pid).unwrap().pt_pages() {
            let addr = pfn.addr().0;
            assert!(addr >= mark);
            let row = kernel.dram().geometry().row_of_addr(addr).unwrap();
            assert_eq!(kernel.dram().cell_type_of_row(row).unwrap(), CellType::True);
            assert_eq!(kernel.allocator().zone_of(*pfn), Some(ZoneKind::Ptp));
        }
    }
    assert!(verify_system(&kernel).unwrap().is_clean());
}

#[test]
fn multi_level_boot_keeps_levels_ordered_and_verifies() {
    let mut kernel = SystemBuilder::new(16 << 20)
        .ptp_bytes(1 << 20)
        .protected(true)
        .multi_level(true)
        .build()
        .unwrap();
    let pid = kernel.create_process(false).unwrap();
    for i in 0..6u64 {
        kernel.mmap_anonymous(pid, VirtAddr(0x4000_0000 + i * (2 << 20)), PAGE_SIZE, true).unwrap();
    }
    let layout = kernel.ptp_layout().unwrap().clone();
    for (pfn, level) in kernel.process(pid).unwrap().pt_pages() {
        let addr = pfn.addr().0;
        let home = layout
            .subzones()
            .iter()
            .find(|(r, _)| r.contains(&addr))
            .and_then(|(_, l)| *l)
            .expect("PT page in a tagged sub-zone");
        assert_eq!(home, *level);
    }
    assert!(verify_system(&kernel).unwrap().is_clean());
}

#[test]
fn two_zeros_restriction_keeps_untrusted_data_out_of_stripes() {
    let mut kernel = SystemBuilder::new(16 << 20)
        .ptp_bytes(1 << 20)
        .protected(true)
        .restrict_two_zeros(true)
        .build()
        .unwrap();
    let layout = kernel.ptp_layout().unwrap().clone();
    let indicator = PtpIndicator::of_layout(&layout);
    let pid = kernel.create_process(false).unwrap();
    kernel.mmap_anonymous(pid, VirtAddr(0x4000_0000), 64 * PAGE_SIZE, true).unwrap();
    for record in kernel.iter_pt_entries(pid).unwrap() {
        if record.level == PtLevel::Pt {
            let target = record.pte.pfn().addr().0;
            assert!(
                indicator.zeros(target) >= 2,
                "untrusted data page at {target:#x} has under-two-zero indicator"
            );
        }
    }
}

#[test]
fn capacity_loss_agrees_with_analysis_model() {
    // Build a system where the worst case is realized (anti region on top)
    // and check the measured loss against the section 6.2 model.
    let kernel = SystemBuilder::new(16 << 20)
        .ptp_bytes(256 * 1024)
        .cell_period(64) // 256 KiB runs with 4 KiB rows
        .protected(true)
        .build()
        .unwrap();
    let layout = kernel.ptp_layout().unwrap();
    let measured = layout.capacity_loss_bytes();
    let region_bytes = 64 * 4096; // period_rows × row_bytes
    let model = monotonic_cta::analysis::capacity::worst_case_loss_bytes(256 * 1024, region_bytes);
    assert!(measured <= model, "measured {measured} must not exceed worst case {model}");
}

#[test]
fn row_remapping_is_transparent_to_cta() {
    let mut kernel = SystemBuilder::small_test().protected(true).build().unwrap();
    // Remap a true-cell row inside ZONE_PTP to a same-type spare.
    let mark_row =
        kernel.ptp_layout().unwrap().low_water_mark() / kernel.dram().geometry().row_bytes();
    let faulty = cta_dram::RowId(mark_row + 1);
    let spare = cta_dram::RowId(mark_row + 3);
    assert_eq!(kernel.dram().cell_type_of_row(faulty).unwrap(), CellType::True);
    kernel.dram_mut().remap_row(faulty, spare).unwrap();
    // The remapped row still reports true-cell and the system still boots
    // processes and verifies.
    assert_eq!(kernel.dram().cell_type_of_row(faulty).unwrap(), CellType::True);
    let pid = kernel.create_process(false).unwrap();
    kernel.mmap_anonymous(pid, VirtAddr(0x4000_0000), 4 * PAGE_SIZE, true).unwrap();
    assert!(verify_system(&kernel).unwrap().is_clean());
}
