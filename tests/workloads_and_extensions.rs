//! Cross-crate integration: the Table 4 workload harness and the section 8
//! extensions running against full systems.

use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::{DramConfig, DramModule, RowId};
use monotonic_cta::ext::{BootDecision, ColdbootGuard, PopcountCode, Verdict};
use monotonic_cta::vm::Kernel;
use monotonic_cta::workloads::{phoronix, spec2006, Runner};

fn machine(protected: bool) -> Kernel {
    SystemBuilder::new(16 << 20).ptp_bytes(1 << 20).seed(1234).protected(protected).build().unwrap()
}

#[test]
fn all_27_workloads_run_with_zero_sim_overhead() {
    let runner = Runner { repetitions: 1, seed: 42 };
    for spec in spec2006().iter().chain(phoronix().iter()) {
        let row = runner.compare(machine, spec).unwrap();
        assert!(row.delta_percent().abs() < 2.0, "{}: Δ = {:.3}%", spec.name, row.delta_percent());
    }
}

#[test]
fn workloads_conserve_memory_on_both_kernels() {
    for protected in [false, true] {
        let mut kernel = machine(protected);
        let free0 = kernel.allocator().free_page_count();
        let runner = Runner { repetitions: 1, seed: 7 };
        for spec in spec2006().iter().take(4) {
            runner.run(&mut kernel, spec).unwrap();
            assert_eq!(kernel.allocator().free_page_count(), free0, "{}", spec.name);
        }
    }
}

#[test]
fn workload_sim_times_are_reproducible() {
    let runner = Runner { repetitions: 1, seed: 11 };
    let spec = &phoronix()[2]; // ramspeed:INT
    let a = runner.run(&mut machine(true), spec).unwrap();
    let b = runner.run(&mut machine(true), spec).unwrap();
    assert_eq!(a.sim_ns, b.sim_ns);
    assert_eq!(a.walks, b.walks);
    assert_eq!(a.pt_pages, b.pt_pages);
}

#[test]
fn coldboot_guard_and_popcount_code_compose_on_one_module() {
    // Both extensions can share a module with a CTA kernel's DRAM config.
    let mut module = DramModule::new(DramConfig::small_test());
    let probe = module.config().retention.max_ns * 2;
    let mut guard = ColdbootGuard::install(&mut module, 16..32, probe).unwrap();

    let data: Vec<u8> = (0..2048).map(|i| (i % 199) as u8).collect();
    let code = PopcountCode::encode(&mut module, RowId(2), RowId(10), &data).unwrap();
    guard.arm(&mut module).unwrap();

    assert_eq!(code.check(&mut module).unwrap(), Verdict::Clean);
    // Quick power cycle: guard halts, and the popcount data survived (it
    // would have been readable — exactly what the guard protects against).
    module.power_off(100_000_000);
    assert!(matches!(guard.check(&mut module).unwrap(), BootDecision::Halt { .. }));
    assert_eq!(code.data(&mut module).unwrap(), data);
    // Long power-off: guard proceeds, and the data is gone.
    module.power_off(module.config().retention.long_max_ns + 1);
    assert_eq!(guard.check(&mut module).unwrap(), BootDecision::Proceed);
    assert_ne!(code.data(&mut module).unwrap(), data);
}
