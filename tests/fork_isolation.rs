//! `Kernel::fork()` isolation: nothing a forked child does — mapping,
//! unmapping, hammering, even direct PTE corruption — is visible to the
//! parent, on any row-store backend. The parent's page tables, zone
//! statistics, telemetry, and No Self-Reference verdict stay untouched.

use monotonic_cta::core::verify::verify_system;
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::{RowId, StoreBackend};
use monotonic_cta::mem::PAGE_SIZE;
use monotonic_cta::vm::{Kernel, Pid, VirtAddr, PTE_ADDR_MASK};

fn parent_machine(backend: StoreBackend) -> (Kernel, Pid) {
    let mut kernel = SystemBuilder::new(16 << 20)
        .ptp_bytes(1 << 20)
        .seed(41)
        .protected(true)
        .backend(backend)
        .build()
        .unwrap();
    let pid = kernel.create_process(false).unwrap();
    for i in 0..4u64 {
        kernel
            .mmap_anonymous(pid, VirtAddr(0x4000_0000 + i * (4 << 20)), 4 * PAGE_SIZE, true)
            .unwrap();
    }
    (kernel, pid)
}

/// Everything we assert stays constant on the parent, in one snapshot.
fn snapshot(kernel: &Kernel, pid: Pid) -> (String, String, bool, usize) {
    let ptes: String = kernel
        .iter_pt_entries(pid)
        .unwrap()
        .iter()
        .map(|r| format!("{:?}@{:x}={:?};", r.level, r.entry_addr, r.pte))
        .collect();
    let counters = kernel.counters("parent").to_json();
    let clean = verify_system(kernel).unwrap().is_clean();
    let materialized = kernel.dram().rows_materialized();
    (ptes, counters, clean, materialized)
}

#[test]
fn child_mutations_never_reach_the_parent() {
    for backend in StoreBackend::ALL {
        let (parent, pid) = parent_machine(backend);
        let before = snapshot(&parent, pid);
        assert!(before.2, "parent must boot clean, backend={backend}");

        let mut child = parent.fork();

        // Map/unmap churn: new frames, new page-table pages, freed frames.
        let child_pid = child.create_process(false).unwrap();
        for i in 0..6u64 {
            child
                .mmap_anonymous(
                    child_pid,
                    VirtAddr(0x7000_0000 + i * (4 << 20)),
                    2 * PAGE_SIZE,
                    true,
                )
                .unwrap();
        }
        child.munmap(pid, VirtAddr(0x4000_0000), 4 * PAGE_SIZE).unwrap();

        // Hammering: flips land in the child's DRAM only.
        for row in 1..32u64 {
            child.dram_mut().hammer_to_threshold(RowId(row)).unwrap();
        }

        // Direct PTE corruption: point a leaf entry of the child's clone of
        // the parent's process at the entry's own table frame — the
        // self-reference CTA exists to forbid.
        let record = child
            .iter_pt_entries(pid)
            .unwrap()
            .into_iter()
            .find(|r| r.pte.0 != 0)
            .expect("mapped process has present entries");
        let self_ref =
            (record.pte.0 & !PTE_ADDR_MASK) | ((record.table.0 * PAGE_SIZE) & PTE_ADDR_MASK);
        child.dram_mut().write_u64(record.entry_addr, self_ref).unwrap();
        assert!(
            !verify_system(&child).unwrap().is_clean(),
            "corrupted child must flunk verification, backend={backend}"
        );

        // The parent saw none of it: PTEs, zone stats + full telemetry,
        // No Self-Reference verdict, and materialized-row gauge unchanged.
        let after = snapshot(&parent, pid);
        assert_eq!(after.0, before.0, "parent PTEs changed, backend={backend}");
        assert_eq!(after.1, before.1, "parent telemetry changed, backend={backend}");
        assert!(after.2, "parent verdict changed, backend={backend}");
        assert_eq!(after.3, before.3, "parent DRAM materialization changed, backend={backend}");
    }
}

#[test]
fn fork_of_fresh_boot_is_indistinguishable_from_reboot() {
    for backend in StoreBackend::ALL {
        let build = || {
            SystemBuilder::new(8 << 20)
                .ptp_bytes(512 * 1024)
                .seed(7)
                .protected(true)
                .backend(backend)
                .build()
                .unwrap()
        };
        let parent = build();
        let mut forked = parent.fork();
        let mut rebooted = build();

        let pid_f = forked.create_process(false).unwrap();
        let pid_r = rebooted.create_process(false).unwrap();
        assert_eq!(pid_f, pid_r);
        forked.mmap_anonymous(pid_f, VirtAddr(0x5000_0000), 8 * PAGE_SIZE, true).unwrap();
        rebooted.mmap_anonymous(pid_r, VirtAddr(0x5000_0000), 8 * PAGE_SIZE, true).unwrap();

        assert_eq!(
            forked.iter_pt_entries(pid_f).unwrap(),
            rebooted.iter_pt_entries(pid_r).unwrap(),
            "backend={backend}"
        );
        assert_eq!(
            forked.counters("k").to_json(),
            rebooted.counters("k").to_json(),
            "backend={backend}"
        );
    }
}

#[test]
fn cow_backend_forks_share_dram_rows() {
    let (parent, _) = parent_machine(StoreBackend::Cow);
    let materialized = parent.dram().rows_materialized();
    assert!(materialized > 0);
    let child = parent.fork();
    assert_eq!(parent.dram().rows_shared_with_forks(), materialized);
    drop(child);
    assert_eq!(parent.dram().rows_shared_with_forks(), 0);
}
