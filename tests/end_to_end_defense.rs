//! Cross-crate integration: the full attack/defense matrix.

use monotonic_cta::attack::{BruteForceCtaAttack, SprayAttack, TemplatingAttack};
use monotonic_cta::core::verify::{escalation_armed, verify_system};
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::DisturbanceParams;
use monotonic_cta::vm::Kernel;

fn machine(seed: u64, protected: bool, pf: f64, threshold: u64) -> Kernel {
    SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(seed)
        .protected(protected)
        .disturbance(DisturbanceParams {
            pf,
            hammer_threshold: threshold,
            ..DisturbanceParams::default()
        })
        .build()
        .expect("machine boots")
}

#[test]
fn spray_attack_matrix() {
    let attack = SprayAttack::default();
    let mut stock_successes = 0;
    for seed in 0..10u64 {
        // Stock kernel: count successes.
        let mut kernel = machine(seed, false, 0.05, 128 * 1024);
        let outcome = attack.run(&mut kernel).expect("attack runs");
        if outcome.success() {
            stock_successes += 1;
            // Success must be corroborated by the ground-truth verifier and
            // by physical evidence.
            assert!(verify_system(&kernel).expect("verifier").self_references().count() > 0);
            let pid = *kernel.pids().last().expect("attacker pid");
            assert!(escalation_armed(&kernel, pid).expect("armed check"));
        }
        // CTA kernel: never.
        let mut kernel = machine(seed, true, 0.05, 128 * 1024);
        let outcome = attack.run(&mut kernel).expect("attack runs");
        assert!(!outcome.success(), "seed {seed} escaped CTA");
        assert_eq!(
            verify_system(&kernel).expect("verifier").self_references().count(),
            0,
            "seed {seed}"
        );
    }
    assert!(stock_successes >= 2, "stock kernels should fall: {stock_successes}/10");
}

#[test]
fn templating_attack_matrix() {
    let attack = TemplatingAttack::default();
    let mut stock_successes = 0;
    for seed in 0..6u64 {
        let mut kernel = machine(seed, false, 0.004, 128 * 1024);
        if attack.run(&mut kernel).expect("attack runs").success() {
            stock_successes += 1;
        }
        let mut kernel = machine(seed, true, 0.004, 128 * 1024);
        assert!(!attack.run(&mut kernel).expect("attack runs").success(), "seed {seed}");
    }
    assert!(stock_successes >= 1, "templating should beat some stock kernel");
}

#[test]
fn algorithm1_matrix() {
    let attack = BruteForceCtaAttack::default();
    for seed in 0..3u64 {
        let mut kernel = machine(seed, true, 0.02, 128);
        let (outcome, report) = attack.run(&mut kernel).expect("attack runs");
        assert!(!outcome.success());
        assert!(report.ptes_checked > 0);
        // The walk-hammer mechanism works — flips occur — yet no
        // self-reference ever forms.
        let verify = verify_system(&kernel).expect("verifier");
        assert_eq!(verify.self_references().count(), 0);
    }
}

#[test]
fn defense_does_not_depend_on_luck_across_attack_order() {
    // Run all three attacks back to back against one CTA machine: the
    // accumulated corruption still never forms a self-reference.
    let mut kernel = machine(9, true, 0.03, 128);
    let _ = SprayAttack::default().run(&mut kernel).expect("spray");
    let _ = TemplatingAttack::default().run(&mut kernel).expect("templating");
    let _ = BruteForceCtaAttack::default().run(&mut kernel).expect("brute");
    let report = verify_system(&kernel).expect("verifier");
    assert_eq!(report.self_references().count(), 0);
    assert!(report.entries_checked > 0);
    // And the kernel secret is untouched.
    let (pfn, secret) = kernel.kernel_secret();
    assert_eq!(kernel.dram().peek(pfn.addr().0, 16).expect("oracle"), secret);
}
