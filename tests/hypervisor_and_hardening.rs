//! Cross-crate integration: the section 7 extensions (hypervisor zones,
//! huge pages + PS-bit screening) and the hardening companions (ECC,
//! ANVIL) composed with full systems.

use monotonic_cta::core::verify::verify_system;
use monotonic_cta::core::SystemBuilder;
use monotonic_cta::dram::{DisturbanceParams, DramConfig, DramModule, EccRegion, RowId};
use monotonic_cta::ext::{AnvilConfig, AnvilDetector};
use monotonic_cta::mem::{GuestSpec, HypervisorPlan, MemoryMap, PtLevel};
use monotonic_cta::vm::{Access, Kernel, VirtAddr, HUGE_PAGE_SIZE};

#[test]
fn hypervisor_guests_boot_and_stay_in_their_slices() {
    let base = SystemBuilder::new(8 << 20).seed(77);
    let host = DramModule::new(base.to_config().dram.clone());
    let plan = HypervisorPlan::build(
        &host.ground_truth_cell_map(),
        8 << 20,
        &[GuestSpec::new("a", 256 * 1024), GuestSpec::new("b", 256 * 1024)],
    )
    .unwrap();
    assert!(plan.check(&host.ground_truth_cell_map()).is_empty());

    for guest in plan.guests() {
        let mut config = base.clone().to_config();
        config.memory_map_override =
            Some(MemoryMap::x86_64(8 << 20).with_cta(guest.layout.clone()));
        let mut kernel = Kernel::new(config).unwrap();
        let pid = kernel.create_process(false).unwrap();
        kernel.mmap_anonymous(pid, VirtAddr(0x4000_0000), 8 * 4096, true).unwrap();
        for (pfn, _) in kernel.process(pid).unwrap().pt_pages() {
            let addr = pfn.addr().0;
            assert!(guest.layout.subzones().iter().any(|(r, _)| r.contains(&addr)));
            assert!(addr >= plan.zone_base());
        }
        assert!(verify_system(&kernel).unwrap().is_clean());
    }
}

#[test]
fn huge_pages_survive_hammering_under_multilevel_screened_cta() {
    let mut kernel = SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(5)
        .protected(true)
        .multi_level(true)
        .screen_ps_bit(true)
        // pf must stay low enough that screening leaves usable PD/PDPT
        // frames: P(frame screened) = 1 − (1−pf)^512 ≈ 40% at pf = 1e-3.
        .disturbance(DisturbanceParams { pf: 0.001, reverse_rate: 0.0, ..Default::default() })
        .build()
        .unwrap();
    let pid = kernel.create_process(false).unwrap();
    let va = VirtAddr(0x4000_0000);
    kernel.mmap_huge(pid, va, HUGE_PAGE_SIZE, true).unwrap();
    kernel.write_virt(pid, va, b"huge page payload", Access::user_write()).unwrap();

    // Hammer the entire ZONE_PTP.
    let mark_row =
        kernel.ptp_layout().unwrap().low_water_mark() / kernel.dram().geometry().row_bytes();
    let rows = kernel.dram().geometry().total_rows();
    let interval = kernel.dram().config().refresh_interval_ns;
    for row in mark_row..rows {
        kernel.dram_mut().advance(interval);
        let _ = kernel.dram_mut().hammer_double_sided(RowId(row));
    }
    kernel.flush_tlb();

    // The screened PS bit cannot have flipped 1→0: the huge entry is still
    // huge, so the walk never descends into attacker data.
    let records = kernel.iter_pt_entries_exhaustive(pid).unwrap();
    let pd_entries: Vec<_> = records.iter().filter(|r| r.level == PtLevel::Pd).collect();
    assert!(pd_entries.iter().any(|r| r.pte.huge()), "the huge entry must keep PS=1");
    assert_eq!(verify_system(&kernel).unwrap().self_references().count(), 0);
}

#[test]
fn ecc_and_cta_protect_different_things() {
    // ECC on user data and CTA on page tables coexist on one module:
    // hammering corrupts ECC'd data (detected) without ever producing a
    // PTE self-reference.
    let mut kernel = SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(3)
        .protected(true)
        .disturbance(DisturbanceParams { pf: 0.02, ..Default::default() })
        .build()
        .unwrap();
    let pid = kernel.create_process(false).unwrap();
    kernel.mmap_anonymous(pid, VirtAddr(0x4000_0000), 4 * 4096, true).unwrap();

    let mut region = EccRegion::new(kernel.dram_mut(), 100 * 4096, 104 * 4096, 512).unwrap();
    for i in 0..512u64 {
        region.write_word(kernel.dram_mut(), i, u64::MAX).unwrap();
    }
    let row = kernel.dram().geometry().row_of_addr(100 * 4096).unwrap();
    kernel.dram_mut().hammer_double_sided(row).unwrap();
    let stats = region.scrub(kernel.dram_mut()).unwrap();
    assert!(stats.corrected + stats.detected_double + stats.detected_multi > 0);
    assert!(verify_system(&kernel).unwrap().is_clean());
}

#[test]
fn anvil_detects_an_attack_against_a_live_kernel() {
    let mut kernel = SystemBuilder::new(8 << 20)
        .ptp_bytes(512 * 1024)
        .seed(8)
        .protected(true)
        .disturbance(DisturbanceParams { pf: 0.05, ..Default::default() })
        .build()
        .unwrap();
    let mut detector = AnvilDetector::new(AnvilConfig::default());
    // Benign phase: no alarms.
    let pid = kernel.create_process(false).unwrap();
    kernel.mmap_anonymous(pid, VirtAddr(0x4000_0000), 16 * 4096, true).unwrap();
    for i in 0..64u64 {
        kernel
            .write_virt(pid, VirtAddr(0x4000_0000 + (i % 16) * 4096), &[1], Access::user_write())
            .unwrap();
    }
    assert!(detector.sample(kernel.dram()).is_empty());
    // Attack phase: an attacker hammer burst trips it.
    let row = kernel.row_of_virt(pid, VirtAddr(0x4000_0000)).unwrap();
    let threshold = kernel.dram().config().disturbance.hammer_threshold;
    kernel.dram_mut().hammer(row, threshold / 4).unwrap();
    assert!(!detector.sample(kernel.dram()).is_empty());
}

#[test]
fn ecc_check_rows_are_hammerable_too() {
    // The check bits live in DRAM like everything else; corrupting *them*
    // is also detected (weight mismatch from the other side).
    let mut m = DramModule::new(
        DramConfig::small_test()
            .with_disturbance(DisturbanceParams { pf: 0.05, ..Default::default() }),
    );
    let mut region = EccRegion::new(&mut m, 2 * 4096, 30 * 4096, 512).unwrap();
    for i in 0..512u64 {
        region.write_word(&mut m, i, 0xAAAA_AAAA_AAAA_AAAA).unwrap();
    }
    m.hammer_double_sided(RowId(30)).unwrap();
    let stats = region.scrub(&mut m).unwrap();
    assert!(stats.corrected + stats.detected_double + stats.detected_multi > 0, "{stats:?}");
}
