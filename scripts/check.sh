#!/usr/bin/env sh
# Tier-1 gate for monotonic-cta: build, full test suite, clippy (deny
# warnings), and a quick bench-baseline smoke run. Everything here must
# pass before a change lands.
#
# Usage: scripts/check.sh
#
# The bench smoke writes under the "check" label in BENCH_baseline.json
# so it never clobbers the recorded before/after sections.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -q -- -D warnings

echo "==> bench-baseline --quick smoke"
cargo run --release -q -p cta-bench --bin bench-baseline -- --label check --quick

echo "==> check.sh: all gates passed"
