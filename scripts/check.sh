#!/usr/bin/env sh
# Tier-1 gate for monotonic-cta: formatting, build, full test suite,
# clippy (deny warnings), rustdoc (deny warnings), a quick bench-baseline
# smoke run, an examples smoke run, and a telemetry sanity sweep.
# Everything here must pass before a change lands.
#
# Usage: scripts/check.sh
#
# The bench smoke writes under the "check" label in BENCH_baseline.json
# so it never clobbers the recorded before/after sections; it also emits
# telemetry/bench-baseline-check.telemetry.json, which the final gate
# scans (alongside BENCH_baseline.json) for NaN/inf and sanitizer flags.
set -eu

cd "$(dirname "$0")/.."

# Vendored crates keep their upstream formatting (and doc warnings), so
# fmt and doc run per first-party package instead of workspace-wide
# (rustfmt.toml `ignore` needs nightly; `cargo doc --workspace` would
# document the vendored members too).
FIRST_PARTY="monotonic-cta cta-analysis cta-attack cta-bench cta-core \
    cta-dram cta-ext cta-mem cta-parallel cta-telemetry cta-vm \
    cta-workloads"

echo "==> cargo fmt --check (first-party packages)"
for pkg in $FIRST_PARTY; do
    cargo fmt -p "$pkg" --check
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -q -- -D warnings

echo "==> cargo doc --no-deps (first-party packages, deny warnings)"
for pkg in $FIRST_PARTY; do
    RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps -p "$pkg"
done

echo "==> bench-baseline --quick smoke"
# Snapshot the previous quick-smoke section (if any) before the fresh run
# overwrites it, so the new numbers can be diffed against it below.
PREV_CHECK=""
if [ -f BENCH_baseline.json ]; then
    PREV_CHECK=$(grep '"check"' BENCH_baseline.json || true)
fi
cargo run --release -q -p cta-bench --bin bench-baseline -- --label check --quick

echo "==> bench regression watch (quick smoke vs previous check label)"
# Warns loudly — never fails — when a watched metric regressed by more
# than 30% relative to the previous run of this script. Direction-aware:
# latency metrics (ns/ms, lower is better) warn when they grow; rate
# metrics (ops/sec, MB/sec, samples/sec — higher is better) warn when
# they shrink. Quick-mode numbers are noisy: treat a warning as a prompt
# to re-run the full (non-quick) bench-baseline before trusting the
# change.
NEW_CHECK=$(grep '"check"' BENCH_baseline.json || true)
drift_watch() {
    # $1 = direction (lat|rate), $2 = metric name
    old=$(printf '%s\n' "$PREV_CHECK" \
        | sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p")
    new=$(printf '%s\n' "$NEW_CHECK" \
        | sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p")
    if [ -n "$old" ] && [ -n "$new" ]; then
        awk -v d="$1" -v m="$2" -v o="$old" -v n="$new" 'BEGIN {
            worse = (d == "lat") ? (o > 0 && n > o * 1.3) \
                                 : (n > 0 && o > n * 1.3)
            if (worse) {
                printf "##########################################\n"
                printf "WARNING: %s regressed by >30%%\n", m
                printf "WARNING:   previous %.3f -> now %.3f\n", o, n
                printf "WARNING: re-run the full bench-baseline\n"
                printf "##########################################\n"
            }
        }'
    fi
}
if [ -n "$PREV_CHECK" ] && [ -n "$NEW_CHECK" ]; then
    for metric in pte_walk_cold_stock_ns pte_walk_cold_cta_ns \
        translate_tlb_hit_stock_ns translate_tlb_hit_cta_ns \
        boot_dense_ms service_p99_trial_latency_ms; do
        drift_watch lat "$metric"
    done
    for metric in dram_write_u64_ops_per_sec dram_fill_mb_per_sec \
        mc_serial_samples_per_sec vuln_map_rows_per_sec \
        partial_decay_mb_per_sec service_trials_per_sec \
        rollback_trials_per_sec; do
        drift_watch rate "$metric"
    done
else
    echo "(no previous check label to diff against)"
fi

echo "==> examples smoke (release)"
for ex in quickstart cell_profiling coldboot_and_popcount defended_system \
    privilege_escalation; do
    echo "--- example: $ex"
    cargo run --release -q --example "$ex" > /dev/null
done

echo "==> defense-matrix smoke (exp-matrix --quick)"
# The attacks x defenses x cell-layouts cross-product, 2 seeds per cell.
# The binary asserts internally that SoftTRR and BlockHammer each reduce
# exploit probability vs `none` in at least one cell; its telemetry lands
# in telemetry/ and gets schema-checked by the json-check gate below.
cargo run --release -q -p cta-bench --bin exp-matrix -- --quick > /dev/null

echo "==> campaign executor smoke (cta evaluate)"
# The persistent executor end to end through its CLI front-end: a small
# multi-tenant queue served boot-once/fork-per-trial, streaming one
# executor event per campaign to telemetry/cta-events.jsonl. The stream
# (and the cta-evaluate snapshot) is schema-checked by the json-check
# gate below; the bench-baseline quick smoke above already recorded the
# service_* metrics the drift watch tracks.
cargo run --release -q -p cta-bench --bin cta -- evaluate \
    --tenants 2 --campaigns 1 --trials 2 --workers 2 \
    --jsonl telemetry/cta-events.jsonl > /dev/null

echo "==> strict JSON + schema validation (BENCH_baseline.json + telemetry/*)"
# Every machine-readable artifact the workspace emits must parse as
# standards-valid JSON (duplicate keys and non-finite numbers rejected)
# AND have the right shape: snapshots carry exactly label/flags/groups
# with flat scalar groups plus any per-binary required keys, the baseline
# carries quick/metrics sections, and *.jsonl streams carry one
# schema-valid executor event per line. With no arguments json-check
# audits BENCH_baseline.json plus every *.json and *.jsonl under
# telemetry/.
cargo run --release -q -p cta-bench --bin json-check -- --schema
cargo run --release -q -p cta-bench --bin json-check -- --schema \
    fixtures/recordings/*.recording.json

echo "==> golden recording replay (all backends x flip engines, scoped + executor)"
# The checked-in campaign recordings must replay byte-identically — flip
# transcripts, contents hashes, clocks, outcomes, telemetry — under every
# store backend and flip engine, both through the scoped serial path and
# through the campaign executor at 1 and 3 workers (scheduling must be
# invisible in the bytes). After an *intentional* simulation change,
# regenerate with `replay-check --record` and commit the diff.
cargo run --release -q -p cta-bench --bin replay-check -- --executor

echo "==> journal-isolation smoke (one golden under --isolation journal)"
# The `--isolation` CLI dimension end to end: one golden fixture replayed
# through the executor with trials journaled and rolled back in place on
# the pooled parents instead of forked. The full grid above already
# covers both modes; this gate additionally pins the flag-parsing path
# that narrows the grid to the journal mode.
cargo run --release -q -p cta-bench --bin replay-check -- \
    --isolation journal fixtures/recordings/spray-small.recording.json

echo "==> telemetry sanity: no NaN/inf, no sanitizer flags"
# Word-boundary patterns: a substring match like `flip_info` or a
# `finance` label must not trip the gate; only real non-finite JSON
# values (NaN/inf/Infinity as standalone tokens) and `non_finite:`
# sanitizer flags do. `_` is a word character, so `\binf\b` cannot match
# inside `flip_info`.
for f in telemetry/bench-baseline-check.telemetry.json BENCH_baseline.json; do
    [ -f "$f" ] || { echo "missing $f"; exit 1; }
    if grep -nE '\bNaN\b|\bnan\b|\binf\b|\bInfinity\b|non_finite:' "$f"; then
        echo "non-finite value or sanitizer flag in $f"
        exit 1
    fi
done

echo "==> check.sh: all gates passed"
