#!/usr/bin/env sh
# Tier-1 gate for monotonic-cta: formatting, build, full test suite,
# clippy (deny warnings), a quick bench-baseline smoke run, and a
# telemetry sanity sweep. Everything here must pass before a change
# lands.
#
# Usage: scripts/check.sh
#
# The bench smoke writes under the "check" label in BENCH_baseline.json
# so it never clobbers the recorded before/after sections; it also emits
# telemetry/bench-baseline-check.telemetry.json, which the final gate
# scans (alongside BENCH_baseline.json) for NaN/inf and sanitizer flags.
set -eu

cd "$(dirname "$0")/.."

# Vendored crates keep their upstream formatting, so fmt runs per
# first-party package instead of workspace-wide (rustfmt.toml `ignore`
# needs nightly).
echo "==> cargo fmt --check (first-party packages)"
for pkg in monotonic-cta cta-analysis cta-attack cta-bench cta-core \
    cta-dram cta-ext cta-mem cta-parallel cta-telemetry cta-vm \
    cta-workloads; do
    cargo fmt -p "$pkg" --check
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -q -- -D warnings

echo "==> bench-baseline --quick smoke"
cargo run --release -q -p cta-bench --bin bench-baseline -- --label check --quick

echo "==> telemetry sanity: no NaN/inf, no sanitizer flags"
for f in telemetry/bench-baseline-check.telemetry.json BENCH_baseline.json; do
    [ -f "$f" ] || { echo "missing $f"; exit 1; }
    if grep -nE 'NaN|nan|inf|non_finite' "$f"; then
        echo "non-finite value or sanitizer flag in $f"
        exit 1
    fi
done

echo "==> check.sh: all gates passed"
